// Plan ↔ symbolic-form round trip for the persistent cache. A Plan is
// already symbolic — steps name predicates, columns, template elements and
// access-path choices, never pointers into live storage — so serialization is
// a flat field walk. Per-execution state (Cancel/Yield hooks, shard
// restriction, Yielded) is deliberately not encoded: cached entries are
// always pristine and per-run decoration happens on the copies handed out by
// boundPlan. Decoded plans carry the builder's probe choices; callers must
// RevalidatePlan against the live catalog before serving them, mirroring
// bindPlan's rebind path, so a probe whose index is not registered in this
// process demotes to a filtered scan instead of assuming the old layout.
package interp

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
	"carac/internal/wire"
)

// PlanCodecVersion tags the layout below; bump on any field change so stale
// cache files invalidate instead of misdecoding.
const PlanCodecVersion = 1

func appendTmpl(b []byte, t TmplElem) []byte {
	flag := uint8(0)
	if t.IsConst {
		flag = 1
	}
	b = wire.AppendU8(b, flag)
	b = wire.AppendI32(b, int32(t.Const))
	return wire.AppendI32(b, int32(t.Var))
}

func readTmpl(r *wire.Reader) TmplElem {
	var t TmplElem
	t.IsConst = r.U8() != 0
	t.Const = storage.Value(r.I32())
	t.Var = ast.VarID(r.I32())
	return t
}

func appendTmpls(b []byte, ts []TmplElem) []byte {
	b = wire.AppendInt(b, len(ts))
	for _, t := range ts {
		b = appendTmpl(b, t)
	}
	return b
}

func readTmpls(r *wire.Reader) []TmplElem {
	n := r.Count(9)
	if n <= 0 {
		return nil
	}
	ts := make([]TmplElem, n)
	for i := range ts {
		ts[i] = readTmpl(r)
	}
	return ts
}

// AppendPlan encodes p's symbolic form onto b.
func AppendPlan(b []byte, p *Plan) []byte {
	b = wire.AppendInt(b, len(p.Steps))
	for i := range p.Steps {
		st := &p.Steps[i]
		b = wire.AppendU8(b, uint8(st.Kind))
		b = wire.AppendI32(b, int32(st.Pred))
		b = wire.AppendU8(b, uint8(st.Src))
		b = wire.AppendInt(b, st.ProbeCol)
		b = appendTmpl(b, st.ProbeKey)
		b = wire.AppendInt(b, len(st.ProbeCols))
		for _, c := range st.ProbeCols {
			b = wire.AppendInt(b, c)
		}
		b = appendTmpls(b, st.ProbeKeys)
		b = wire.AppendInt(b, len(st.Checks))
		for _, ck := range st.Checks {
			b = wire.AppendInt(b, ck.Col)
			b = wire.AppendU8(b, uint8(ck.Mode))
			b = wire.AppendI32(b, int32(ck.Const))
			b = wire.AppendI32(b, int32(ck.Var))
			b = wire.AppendInt(b, ck.Other)
		}
		b = wire.AppendInt(b, len(st.Binds))
		for _, bd := range st.Binds {
			b = wire.AppendInt(b, bd.Col)
			b = wire.AppendI32(b, int32(bd.Var))
		}
		b = appendTmpls(b, st.Tmpl)
		b = wire.AppendU8(b, uint8(st.Builtin))
		b = appendTmpls(b, st.Args)
		b = wire.AppendInt(b, st.Out)
		b = wire.AppendI32(b, int32(st.OutVar))
	}
	b = wire.AppendInt(b, len(p.Head))
	for _, h := range p.Head {
		flag := uint8(0)
		if h.IsConst {
			flag = 1
		}
		b = wire.AppendU8(b, flag)
		b = wire.AppendI32(b, int32(h.Const))
		b = wire.AppendI32(b, int32(h.Var))
	}
	b = wire.AppendI32(b, int32(p.Sink))
	b = wire.AppendInt(b, p.NumVars)
	b = wire.AppendU8(b, uint8(p.Agg.Kind))
	b = wire.AppendInt(b, p.Agg.HeadPos)
	b = wire.AppendI32(b, int32(p.Agg.OverVar))
	return wire.AppendF64(b, p.EstRows)
}

// DecodePlan decodes one plan from b, returning the remaining bytes so
// callers embedding plans in a larger stream (the bytecode program's
// aggregation-plan pool) can chain decodes.
func DecodePlan(b []byte) (*Plan, []byte, error) {
	r := wire.NewReader(b)
	p := &Plan{}
	nsteps := r.Count(1)
	if nsteps > 0 {
		p.Steps = make([]Step, nsteps)
	}
	for i := 0; i < nsteps; i++ {
		st := &p.Steps[i]
		st.Kind = StepKind(r.U8())
		st.Pred = storage.PredID(r.I32())
		st.Src = ir.Source(r.U8())
		st.ProbeCol = r.Int()
		st.ProbeKey = readTmpl(r)
		if n := r.Count(4); n > 0 {
			st.ProbeCols = make([]int, n)
			for j := range st.ProbeCols {
				st.ProbeCols[j] = r.Int()
			}
		}
		st.ProbeKeys = readTmpls(r)
		if n := r.Count(17); n > 0 {
			st.Checks = make([]ColCheck, n)
			for j := range st.Checks {
				ck := &st.Checks[j]
				ck.Col = r.Int()
				ck.Mode = CheckMode(r.U8())
				ck.Const = storage.Value(r.I32())
				ck.Var = ast.VarID(r.I32())
				ck.Other = r.Int()
			}
		}
		if n := r.Count(8); n > 0 {
			st.Binds = make([]ColBind, n)
			for j := range st.Binds {
				st.Binds[j].Col = r.Int()
				st.Binds[j].Var = ast.VarID(r.I32())
			}
		}
		st.Tmpl = readTmpls(r)
		st.Builtin = ast.Builtin(r.U8())
		st.Args = readTmpls(r)
		st.Out = r.Int()
		st.OutVar = ast.VarID(r.I32())
	}
	if n := r.Count(9); n > 0 {
		p.Head = make([]ir.ProjElem, n)
		for i := range p.Head {
			h := &p.Head[i]
			h.IsConst = r.U8() != 0
			h.Const = storage.Value(r.I32())
			h.Var = ast.VarID(r.I32())
		}
	}
	p.Sink = storage.PredID(r.I32())
	p.NumVars = r.Int()
	p.Agg.Kind = ast.AggKind(r.U8())
	p.Agg.HeadPos = r.Int()
	p.Agg.OverVar = ast.VarID(r.I32())
	p.EstRows = r.F64()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("plan decode: %w", err)
	}
	return p, r.Rest(), nil
}

// RevalidatePlan re-selects every relational step's access path against the
// live catalog, exactly as bindPlan does on a cross-predicate rebind: a
// probe whose index is not registered here demotes to a filtered scan (its
// consumed key check restored), and scans re-probe availability so a
// restarted process with richer index registrations upgrades. Safe to call
// on a freshly decoded plan before it enters the store; the plan is mutated
// in place (it is not yet shared).
func RevalidatePlan(p *Plan, cat *storage.Catalog) {
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.Kind == StepBuiltin {
			continue
		}
		if st.Pred < 0 || int(st.Pred) >= cat.NumPreds() {
			continue
		}
		idxRel := cat.Pred(st.Pred).Derived
		if idxRel == nil {
			continue
		}
		switch st.Kind {
		case StepProbe:
			if !idxRel.HasIndex(st.ProbeCol) {
				demoteProbe(st)
			}
		case StepProbeN:
			if !idxRel.HasCompositeIndex(st.ProbeCols) {
				demoteProbe(st)
			}
		}
		selectProbe(st, idxRel)
	}
}
