package interp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// ErrCancelled is returned when execution was aborted via Interp.Cancel
// (e.g. a benchmark timeout marking a configuration as DNF).
var ErrCancelled = errors.New("interp: execution cancelled")

// Controller is the JIT hook consulted at every IROp safe point. Enter may
// return a thunk to execute *instead of* interpreting op's subtree (a
// compiled unit), or nil to let interpretation proceed. A Controller may
// also mutate SPJ atom orders in place before returning nil (the
// IRGenerator backend).
type Controller interface {
	Enter(op ir.Op, in *Interp) func() error
}

// Yielder is an optional Controller extension: ShouldYield is polled from
// inside long-running subquery executions and, when it returns true, the
// interpreter abandons the subquery and immediately offers the controller a
// safe point — letting asynchronously compiled code take over "at the exact
// spot the interpreter left off" instead of waiting out a badly-ordered
// join (paper §V-B2). Abandonment is sound: the controller only yields when
// a unit subsuming the abandoned work is ready, and the interpreter re-runs
// the subquery itself if the controller declines after all.
type Yielder interface {
	ShouldYield(op ir.Op, in *Interp) bool
}

// ShardUnit is a span-parameterized compiled rule body: one invocation
// evaluates the rule's subqueries with each delta read restricted to the
// contiguous bucket range [shard, shard+span) of an nshards-way partition
// (span <= 0 or nshards <= 1 evaluates the whole delta), writing derivations
// through DerivationSink — the worker's private bucket-partitioned delta
// buffer under the parallel pool, the real DeltaNew otherwise. Units resolve
// relations and their partition layout at invocation time (SwapClear swaps
// relation structs between iterations), carry no mutable compile-time state,
// and must be safe to invoke concurrently from distinct pool workers.
type ShardUnit func(in *Interp, shard, span, nshards int) error

// ShardCompiler is an optional Controller extension consulted by the
// parallel fixpoint driver at the sequential fan-out point of each
// iteration: ResolveShardUnit may return a compiled task body for rule that
// the pool workers then invoke — one call per bucket-span task, with exactly
// the spans chooseFanout handed the interpreted path — instead of
// interpreting the rule's subtree. Returning nil leaves the rule
// interpreted (compilation pending, failed, or unsupported). The driver
// calls ResolveShardUnit only from the interpreter goroutine, so
// implementations may keep single-threaded state there; the returned units
// themselves run on pool workers.
//
// A Controller that does not implement ShardCompiler disables the parallel
// driver entirely (the pre-shard-native behaviour: JIT state was
// single-threaded, so attaching a Controller forced sequential loops).
type ShardCompiler interface {
	ResolveShardUnit(rule *ir.UnionRuleOp, in *Interp) ShardUnit
}

// Stats collects execution counters.
type Stats struct {
	Iterations    int64 // DoWhile loop passes
	Derivations   int64 // tuples newly inserted into DeltaNew
	SPJRuns       int64 // subquery executions
	PlanBuilds    int64 // access plans constructed by the interpreter
	PlanReuses    int64 // subquery executions served from the plan cache
	Reopts        int64 // drift-triggered join-order re-optimizations
	Compiled      int64 // subtrees executed via a Controller thunk
	SeqIters      int64 // iterations the adaptive driver ran on the sequential fast path
	MergeTasks    int64 // per-bucket merge tasks run at iteration barriers
	Steals        int64 // buckets claimed through the shared steal cursor (not via affinity)
	SkewIters     int64 // iterations executed with work-stealing bucket claims
	EstimatedRows int64 // summed histogram-based join-size estimates recorded at plan builds
	Retracted     int64 // rows physically removed by retraction batches (seeds + over-deletes that stayed dead)
	Rederived     int64 // over-deleted rows resurrected by the DRed rederivation round
}

// Interp is the tree-walking interpreter (paper §V-B: "when Carac is in
// interpretation mode, there is no further partial evaluation and the
// interpreter visits this IROp tree"). With a Controller attached it is the
// JIT's baseline execution mode between compilations.
type Interp struct {
	Cat   *storage.Catalog
	Ctrl  Controller
	Stats Stats

	// Executor selects push- or pull-based leaf-join execution (§V-D).
	Executor Executor

	// Parallel evaluates the independent rules of each DoWhile iteration
	// concurrently on a bounded worker pool — sound because the delta split
	// makes readers (Derived, DeltaKnown) frozen for the iteration and each
	// worker writes only its private delta buffer, merged into the real
	// DeltaNew relations at the iteration barrier (§V-D). Honored without a
	// Controller, or with one implementing ShardCompiler (the JIT's
	// controller does: pool tasks then run span-parameterized compiled units
	// where one is ready, interpretation otherwise); any other Controller
	// forces the sequential loop. Parallel=false is the sequential fallback.
	Parallel bool
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int

	// Shards > 1 additionally fans each rule of a parallel iteration out as
	// one task per hash bucket of its delta relation (configured via
	// storage.PredicateDB.SetShards), so a single huge recursive rule — the
	// common shape in transitive-closure-style workloads — no longer
	// serializes the iteration: parallelism becomes bounded by data size,
	// not rule count. Only honored together with Parallel.
	Shards int

	// AdaptiveFanout replaces the static fan-out of Shards with a per-
	// iteration decision read from the live per-shard delta cardinalities
	// (stats.Catalog.ShardCard): an iteration whose total delta is under
	// FanoutThreshold runs on the zero-overhead sequential path (no task
	// spawn, no worker buffers, no merge), and larger iterations pick an
	// effective task count from delta size vs. worker count, handing each
	// task a contiguous span of buckets. Fixpoint tails — many iterations,
	// tiny deltas — stop paying parallelism tax, the regime the paper's
	// adaptive re-optimization targets for plans, applied here to execution
	// strategy.
	AdaptiveFanout bool
	// FanoutThreshold is the sequential-path delta bound; <= 0 selects
	// DefaultFanoutThreshold.
	FanoutThreshold int

	// StealThreshold > 0 enables skew-aware work-stealing: an iteration
	// whose per-bucket delta distribution is skewed past this ratio (max
	// bucket / mean occupied bucket, see chooseFanout) abandons static
	// contiguous bucket spans and lets the pool workers claim buckets one at
	// a time from a shared atomic cursor per rule, so idle workers drain a
	// hot bucket's neighbors instead of idling at the merge barrier.
	// DefaultStealThreshold is the recommended value; <= 0 (the default)
	// keeps static spans.
	StealThreshold float64

	// Plans, when non-nil, caches access plans across subquery executions
	// keyed by (rule, atom order, cardinality band): the repeated per-
	// execution planning the seed interpreter paid becomes a cache lookup,
	// re-planned only when observed cardinality drift exceeds the cache's
	// policy threshold. Shared by the pool workers.
	Plans *plancache.Cache[*Plan]
	// Reopt, when non-nil, is invoked when the plan cache reports a drift-
	// driven miss, giving the caller a chance to re-optimize the subquery's
	// join order with live statistics before the plan is rebuilt (the
	// adaptive policy of paper §IV, without any JIT attached). It returns
	// whether the atom order changed.
	Reopt func(spj *ir.SPJOp) bool
	// Estimate, when non-nil, returns the caller's join-output size estimate
	// for a subquery (histogram-based when the catalog maintains histograms).
	// The interpreter records it on every freshly built plan (Plan.EstRows —
	// rebinds copy the struct, so the estimate survives shared-plan reuse)
	// and accumulates it into Stats.EstimatedRows.
	Estimate func(spj *ir.SPJOp) float64

	// SeedDelta, when non-nil, replaces ScanOp's full Derived→DeltaNew
	// seeding for the predicates it handles (returns true): instead of
	// pushing every Derived row through the first iteration, the caller
	// inserts only the rows that are new relative to an already-known
	// fixpoint — the warm-start path of materialized-epoch serving, where
	// Derived is pre-seeded with the previous epoch's fixpoint and only the
	// ingested delta needs to re-enter semi-naive evaluation. Sound only for
	// monotone programs under additions-only deltas; the serving layer gates
	// it on that. Predicates the hook declines (returns false) seed fully.
	SeedDelta func(pid storage.PredID, dst *storage.Relation) bool

	cancel atomic.Bool
	// cancelHook chains a parent interpreter's cancellation into workers
	// spawned by parallel rule evaluation.
	cancelHook func() bool
	// bufSink, when non-nil, redirects subquery derivations into a private
	// per-worker buffer relation instead of the sink's DeltaNew (parallel
	// rule evaluation; merged at the iteration barrier).
	bufSink func(pred storage.PredID) *storage.Relation
	// shard/shardSpan/shardTotal restrict this (sub-)interpreter's subquery
	// executions to the contiguous bucket range [shard, shard+shardSpan) of
	// each delta relation's shardTotal-way partition; shardTotal == 0 means
	// unrestricted. Set per task by the sharded fan-out.
	shard      int
	shardSpan  int
	shardTotal int
	// workers holds the lazily built pool state of runLoopParallel.
	workers []*workerState
	// bufMu guards bufFree, the per-Interp free list of worker delta buffer
	// relations keyed by arity: buffers are released here (capacity intact)
	// at every merge barrier and reacquired by whichever worker next derives
	// into the predicate, so steady-state iterations allocate nothing.
	bufMu   sync.Mutex
	bufFree map[int][]*storage.Relation
	// fanBuckets, fanCounts, mergePids, mergeTasks, and mergeCounts are
	// driver-owned scratch reused across iterations by the adaptive fan-out
	// decision and the merge barrier (both run at sequential points).
	fanBuckets  []bool
	fanCounts   []int
	mergePids   []storage.PredID
	mergeTasks  []mergeTask
	mergeCounts []int64
	// stealOcc is the iteration's bucket-occupancy snapshot the steal claim
	// loops read (fanBuckets is scratch the merge barrier reuses mid-
	// iteration, so stealing keeps its own copy; only chooseFanout writes it,
	// at a sequential point). affinity remembers, per rule, which worker
	// claimed each bucket in the last stealing iteration — the bucket→worker
	// assignment that biases the next iteration's initial claims so hot
	// sub-relations stay on one worker across iterations.
	stealOcc []bool
	affinity map[*ir.UnionRuleOp][]int32
	// keyMemo caches each subquery's structural plan-cache key, invalidated
	// via ir.SPJOp.OrderGen so the atoms are re-hashed only after a reorder
	// rather than per execution.
	keyMemo map[*ir.SPJOp]spjKeyMemo
	// bindMemo caches each subquery's rebound shared plan: a structural hit
	// may carry a sibling rule's binding, and re-deriving the substitution
	// (step copy + access-path re-selection) per execution would tax every
	// steady-state hit on shared-plan workloads. Keyed per subquery,
	// validated against the served cache entry's identity and the atom-order
	// generation, so a re-planned or re-stored entry invalidates the memo.
	bindMemo map[*ir.SPJOp]boundPlanMemo
	scratch  vecScratch
}

type spjKeyMemo struct {
	gen int
	key plancache.Key
}

// boundPlanMemo is one memoized rebind: src is the cache entry the binding
// was derived from (identity-compared), plan the immutable rebound artifact.
type boundPlanMemo struct {
	src  *Plan
	gen  int
	plan *Plan
}

// vecScratch holds per-interpreter buffers reused for the per-execution
// cardinality and drift-counter vectors (the cache copies what it keeps, so
// reuse is safe; each pool worker owns its sub-interpreter's scratch).
type vecScratch struct {
	cards    []int
	counters []uint64
}

// keyFor returns the subquery's plan-cache key, memoized per atom order.
func (in *Interp) keyFor(spj *ir.SPJOp) plancache.Key {
	if m, ok := in.keyMemo[spj]; ok && m.gen == spj.OrderGen {
		return m.key
	}
	k := plancache.KeyFor(spj)
	if in.keyMemo == nil {
		in.keyMemo = make(map[*ir.SPJOp]spjKeyMemo)
	}
	in.keyMemo[spj] = spjKeyMemo{gen: spj.OrderGen, key: k}
	return k
}

// Cancel aborts the run at the next safe point (callable from any
// goroutine). Compiled units poll it in their loop heads.
func (in *Interp) Cancel() { in.cancel.Store(true) }

// Cancelled reports whether Cancel was called (here or on the parent).
func (in *Interp) Cancelled() bool {
	return in.cancel.Load() || (in.cancelHook != nil && in.cancelHook())
}

// ResetCancel clears a pending cancellation so a reused interpreter can run
// again — serving sessions execute many queries on one Interp, and a
// timed-out query must not poison the ones after it.
func (in *Interp) ResetCancel() { in.cancel.Store(false) }

// TakeStats returns the accumulated execution counters and zeroes them, so
// the next run starts a fresh window. This is the per-query accounting
// surface for serving sessions, which reuse one interpreter across queries:
// Stats becomes query-scoped instead of Interp-global. One-shot runs
// (Program.Run builds a fresh Interp) observe identical values either way.
func (in *Interp) TakeStats() Stats {
	s := in.Stats
	in.Stats = Stats{}
	return s
}

// New returns an interpreter over cat with an optional controller.
func New(cat *storage.Catalog, ctrl Controller) *Interp {
	return &Interp{Cat: cat, Ctrl: ctrl}
}

// NewBuffered returns an interpreter whose subquery derivations are
// redirected into the relations sink hands out per predicate instead of the
// real DeltaNew — the worker shape of the parallel pool (set difference
// against Derived still applies; cross-buffer dedup and derivation counting
// happen when the caller folds the buffers). Exposed for drivers and tests
// that execute compiled ShardUnits outside the built-in pool.
func NewBuffered(cat *storage.Catalog, sink func(pred storage.PredID) *storage.Relation) *Interp {
	return &Interp{Cat: cat, bufSink: sink}
}

// Run executes the IR program to fixpoint.
func (in *Interp) Run(root ir.Op) error { return in.Exec(root) }

// Exec executes one IROp subtree, honoring controller safe points.
func (in *Interp) Exec(op ir.Op) error {
	if in.cancel.Load() {
		return ErrCancelled
	}
	if in.Ctrl != nil {
		if fn := in.Ctrl.Enter(op, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
	}
	return in.interpret(op)
}

// Interpret executes op without consulting the controller at this node
// (children still hit safe points). Compiled snippet continuations call
// this to hand control back to the interpreter.
func (in *Interp) Interpret(op ir.Op) error { return in.interpret(op) }

func (in *Interp) interpret(op ir.Op) error {
	switch n := op.(type) {
	case *ir.ProgramOp:
		for _, c := range n.Body {
			if err := in.Exec(c); err != nil {
				return err
			}
		}
		return nil

	case *ir.ScanOp:
		for _, pid := range n.Preds {
			p := in.Cat.Pred(pid)
			if in.SeedDelta != nil && in.SeedDelta(pid, p.DeltaNew) {
				continue
			}
			p.DeltaNew.InsertAll(p.Derived)
		}
		return nil

	case *ir.SwapClearOp:
		for _, pid := range n.Preds {
			in.Cat.Pred(pid).SwapClear()
		}
		return nil

	case *ir.DoWhileOp:
		if in.Parallel && (in.Ctrl == nil || in.shardCtrl() != nil) {
			return in.runLoopParallel(n)
		}
		for {
			for _, c := range n.Body {
				if err := in.Exec(c); err != nil {
					return err
				}
			}
			in.Stats.Iterations++
			if DeltasEmpty(in.Cat, n.Preds) {
				return nil
			}
		}

	case *ir.UnionAllOp:
		for _, r := range n.Rules {
			if err := in.Exec(r); err != nil {
				return err
			}
		}
		return nil

	case *ir.UnionRuleOp:
		for _, s := range n.Subqueries {
			if err := in.Exec(s); err != nil {
				return err
			}
		}
		return nil

	case *ir.SPJOp:
		return in.execSPJ(n)
	}
	return fmt.Errorf("interp: unknown op %T", op)
}

// shardCtrl returns the attached Controller's ShardCompiler extension, or
// nil when there is no controller or it cannot produce parallel task units.
func (in *Interp) shardCtrl() ShardCompiler {
	if sc, ok := in.Ctrl.(ShardCompiler); ok {
		return sc
	}
	return nil
}

// DerivationSink returns the relation subquery derivations for pred must be
// written to in this (sub-)interpreter's context: the worker's private
// bucket-partitioned delta buffer under parallel buffered evaluation, or nil
// when derivations go to the predicate's real DeltaNew (with set difference
// against Derived and per-insert Stats.Derivations counting). Compiled
// ShardUnits consult it so their emits feed the same merge barrier the
// interpreted tasks feed.
func (in *Interp) DerivationSink(pred storage.PredID) *storage.Relation {
	if in.bufSink == nil {
		return nil
	}
	return in.bufSink(pred)
}

// DeltasEmpty reports whether every listed predicate's DeltaKnown is empty —
// the DoWhile termination condition.
func DeltasEmpty(cat *storage.Catalog, preds []storage.PredID) bool {
	for _, pid := range preds {
		if !cat.Pred(pid).DeltaKnown.Empty() {
			return false
		}
	}
	return true
}

// planFor resolves the access plan for the subquery's current atom order:
// without a plan cache it builds one per execution (the interpretation
// overhead compiled backends avoid); with one it serves the cached plan
// while the drift-gated freshness policy holds, re-optimizing the join order
// via the Reopt hook when it does not. Cache keys are structural fingerprints
// (invariant under predicate renaming), so a hit may carry a structurally
// identical sibling rule's concrete predicates — bindPlan rebinds them to
// this subquery. Cached plans are immutable; the returned copy carries this
// execution's Cancel/Yield state.
func (in *Interp) planFor(spj *ir.SPJOp) (*Plan, error) {
	if in.Plans == nil {
		in.Stats.PlanBuilds++
		p, err := BuildPlan(spj, in.Cat)
		if err != nil {
			return nil, err
		}
		in.recordEstimate(p, spj)
		return p, nil
	}
	src := stats.Catalog{Cat: in.Cat}
	cards := stats.AppendCardVector(in.scratch.cards[:0], spj, src)
	counters := stats.AppendCounterVector(in.scratch.counters[:0], spj, in.Cat)
	in.scratch.cards, in.scratch.counters = cards, counters
	key := in.keyFor(spj)
	if p, ok, stale := in.Plans.Lookup(key, counters, cards); ok {
		if cp, bound := in.boundPlan(p, spj); bound {
			in.Stats.PlanReuses++
			return cp, nil
		}
		// Unbindable (shape mismatch): fall through to a rebuild, which
		// re-stores under this binding.
	} else if stale && in.Reopt != nil {
		in.Stats.Reopts++
		if in.Reopt(spj) {
			// The order changed: key and per-atom vectors follow the new
			// permutation, and the re-optimized order may already have a
			// plan cached from an earlier visit to this cardinality regime
			// (band return) — consult the cache again before rebuilding.
			key = in.keyFor(spj)
			cards = stats.AppendCardVector(cards[:0], spj, src)
			counters = stats.AppendCounterVector(counters[:0], spj, in.Cat)
			in.scratch.cards, in.scratch.counters = cards, counters
			if p, ok, _ := in.Plans.Lookup(key, counters, cards); ok {
				if cp, bound := in.boundPlan(p, spj); bound {
					in.Stats.PlanReuses++
					return cp, nil
				}
			}
		}
	}
	p, err := BuildPlan(spj, in.Cat)
	if err != nil {
		return nil, err
	}
	in.Stats.PlanBuilds++
	in.recordEstimate(p, spj)
	in.Plans.Store(key, counters, cards, p)
	cp := *p
	return &cp, nil
}

// recordEstimate stamps the histogram-based join-output estimate onto a
// freshly built plan (bindPlan's struct copy carries it through rebinds, so
// a cached plan served to a sibling rule keeps the estimate it was built
// under). Recorded at build time only: reuses are free.
func (in *Interp) recordEstimate(p *Plan, spj *ir.SPJOp) {
	if in.Estimate == nil {
		return
	}
	p.EstRows = in.Estimate(spj)
	in.Stats.EstimatedRows += int64(p.EstRows)
}

// boundPlan serves a structural cache hit: the memoized rebind when the
// served entry and the atom order are unchanged since the last execution, a
// fresh bindPlan otherwise (memoized for the next one). The returned copy is
// the caller's to decorate with per-execution state; the memoized artifact
// stays pristine.
func (in *Interp) boundPlan(p *Plan, spj *ir.SPJOp) (*Plan, bool) {
	if m, ok := in.bindMemo[spj]; ok && m.src == p && m.gen == spj.OrderGen {
		cp := *m.plan
		return &cp, true
	}
	bp, bound := in.bindPlan(p, spj)
	if !bound {
		return nil, false
	}
	if in.bindMemo == nil {
		in.bindMemo = make(map[*ir.SPJOp]boundPlanMemo)
	}
	in.bindMemo[spj] = boundPlanMemo{src: p, gen: spj.OrderGen, plan: bp}
	cp := *bp
	return &cp, true
}

// bindPlan specializes a cached plan to spj. Structural fingerprint keys
// share one entry between rules that differ only by predicate renaming, so
// the cached artifact may be bound to a sibling's predicates: BuildPlan
// emits exactly one step per atom in order, so rebinding substitutes each
// relational step's predicate with the requesting atom's (and the sink),
// copying the step slice to keep the cached plan immutable, and re-selects
// each relational step's access path against the target's index
// registrations (demote + selectProbe). It reports false only on a shape
// mismatch (step count vs. atom count), which cannot occur for genuinely
// structure-identical keys.
func (in *Interp) bindPlan(p *Plan, spj *ir.SPJOp) (*Plan, bool) {
	cp := *p
	same := p.Sink == spj.Sink
	if same && len(p.Steps) == len(spj.Atoms) {
		for i := range p.Steps {
			st := &p.Steps[i]
			if st.Kind != StepBuiltin && st.Pred != spj.Atoms[i].Pred {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		return &cp, true
	}
	if len(p.Steps) != len(spj.Atoms) {
		return nil, false
	}
	steps := make([]Step, len(p.Steps))
	copy(steps, p.Steps)
	for i := range steps {
		st := &steps[i]
		if st.Kind == StepBuiltin {
			continue
		}
		pred := spj.Atoms[i].Pred
		// Rebind-time probe re-selection: the builder's predicate and this
		// atom's may have different index registrations, in either
		// direction. A probe whose index is missing here demotes to a scan
		// (its consumed key check restored), and any scan re-probes
		// availability — so a shared plan bound to a better-indexed sibling
		// upgrades, and siblings with incompatible index sets each bind a
		// valid access path instead of ping-ponging the shared entry
		// through rebuilds. All mutations go through fresh slices
		// (demoteProbe/selectProbe replace, never truncate), keeping the
		// cached plan immutable. Index registrations live on Derived and
		// are identical across a predicate's three relations (see
		// BuildPlan).
		idxRel := in.Cat.Pred(pred).Derived
		switch st.Kind {
		case StepProbe:
			if !idxRel.HasIndex(st.ProbeCol) {
				demoteProbe(st)
			}
		case StepProbeN:
			if !idxRel.HasCompositeIndex(st.ProbeCols) {
				demoteProbe(st)
			}
		}
		selectProbe(st, idxRel)
		st.Pred = pred
	}
	cp.Steps = steps
	cp.Sink = spj.Sink
	return &cp, true
}

// shardSkip reports whether this shard task can skip the subquery without
// planning it: subqueries without a delta atom are whole-relation work that
// the first task runs alone (so the fan-out neither duplicates nor drops
// them), and a task whose delta bucket span is empty cannot derive anything
// — the per-shard cardinality statistics make that an O(span) test.
func (in *Interp) shardSkip(spj *ir.SPJOp) bool {
	idx := spj.DeltaAtom()
	if idx < 0 {
		return in.shard != 0
	}
	pred := spj.Atoms[idx].Pred
	if in.Cat.Pred(pred).Shards() == in.shardTotal {
		src := stats.Catalog{Cat: in.Cat}
		for s := in.shard; s < in.shard+in.shardSpan; s++ {
			if src.ShardCard(pred, ir.SrcDelta, s) > 0 {
				return false
			}
		}
		return true
	}
	return false
}

// applyShard installs the task's delta-bucket restriction on the plan copy:
// the first relational step reading SrcDelta admits only rows of buckets
// [shard, shard+span), keyed by the column storage partitioned the
// predicate on.
func (in *Interp) applyShard(plan *Plan) {
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if st.Src != ir.SrcDelta {
			continue
		}
		if st.Kind != StepScan && st.Kind != StepProbe && st.Kind != StepProbeN {
			continue
		}
		plan.ShardStep = i
		plan.Shard = in.shard
		plan.ShardSpan = in.shardSpan
		plan.ShardCount = in.shardTotal
		plan.ShardKeyCol = in.Cat.Pred(st.Pred).ShardKeyCol()
		return
	}
}

// execSPJ interprets one subquery: it resolves an access plan for the
// current atom order (cached or freshly built) and streams matches into the
// sink via the configured executor.
func (in *Interp) execSPJ(spj *ir.SPJOp) error {
	if in.shardTotal > 1 && in.shardSkip(spj) {
		return nil
	}
	plan, err := in.planFor(spj)
	if err != nil {
		return err
	}
	if in.shardTotal > 1 {
		in.applyShard(plan)
	}
	plan.Cancel = in.Cancelled
	if y, ok := in.Ctrl.(Yielder); ok {
		plan.Yield = func() bool { return y.ShouldYield(spj, in) }
	}
	in.Stats.SPJRuns++
	run := func() {
		if in.bufSink != nil {
			// Parallel rule evaluation: derivations land in this worker's
			// private buffer and are counted at the merge barrier.
			runPlanBuffered(plan, in.Cat, in.Executor, in.bufSink(plan.Sink))
		} else if in.Executor == ExecPull {
			in.Stats.Derivations += RunPlanPull(plan, in.Cat)
		} else {
			in.Stats.Derivations += RunPlan(plan, in.Cat)
		}
	}
	run()
	if plan.Yielded {
		// A compiled ancestor became ready mid-join: hand over now.
		if fn := in.Ctrl.Enter(spj, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
		// Controller declined (e.g. unit went stale): finish interpreted.
		plan.Yield = nil
		plan.Yielded = false
		run()
	}
	return nil
}

// workerState is the persistent per-worker state of the parallel rule pool:
// a sub-interpreter (sharing the read-only catalog and the plan cache) and
// the private delta buffers its derivations land in between barriers.
type workerState struct {
	sub  *Interp
	bufs map[storage.PredID]*storage.Relation
	err  error
}

// workerCount resolves the configured pool bound: Workers, or GOMAXPROCS
// when unset.
func (in *Interp) workerCount() int {
	if in.Workers > 0 {
		return in.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// poolSize resolves the bounded worker count for a task batch: workerCount,
// never more than there are tasks.
func (in *Interp) poolSize(tasks int) int {
	w := in.workerCount()
	if w > tasks {
		w = tasks
	}
	return w
}

// ensureWorkers sizes the persistent pool state.
func (in *Interp) ensureWorkers(n int) {
	for len(in.workers) < n {
		ws := &workerState{
			sub:  &Interp{Cat: in.Cat, Executor: in.Executor, Plans: in.Plans, Reopt: in.Reopt, Estimate: in.Estimate, cancelHook: in.Cancelled},
			bufs: make(map[storage.PredID]*storage.Relation),
		}
		ws.sub.bufSink = func(pid storage.PredID) *storage.Relation {
			r := ws.bufs[pid]
			if r == nil {
				r = in.acquireBuf(in.Cat.Pred(pid))
				ws.bufs[pid] = r
			}
			return r
		}
		in.workers = append(in.workers, ws)
	}
}

// acquireBuf hands out a worker delta buffer for the predicate: a recycled
// relation from the per-Interp free list when one of the right arity is
// available (capacity — arena, dedup buckets, shard views — intact from a
// previous iteration), a fresh one otherwise. The buffer's bucket views are
// aligned with the sink's partition so the merge barrier can drain it one
// bucket at a time. Called from pool workers; the free list is
// mutex-guarded, one lock operation per worker×predicate per iteration.
func (in *Interp) acquireBuf(pd *storage.PredicateDB) *storage.Relation {
	var r *storage.Relation
	in.bufMu.Lock()
	if list := in.bufFree[pd.Arity]; len(list) > 0 {
		r = list[len(list)-1]
		in.bufFree[pd.Arity] = list[:len(list)-1]
	}
	in.bufMu.Unlock()
	if r == nil {
		r = storage.NewRelation(pd.Name+"~buf", pd.Arity)
	}
	if pd.Physical() {
		r.SetShardKey(pd.Shards(), pd.ShardKeyCol())
	} else {
		r.SetShardKey(0, 0)
	}
	return r
}

// releaseBuffers empties every worker's delta buffers (capacity retained)
// back onto the free list. Runs at the merge barrier, after the pool has
// quiesced.
func (in *Interp) releaseBuffers(w int) {
	in.bufMu.Lock()
	if in.bufFree == nil {
		in.bufFree = make(map[int][]*storage.Relation)
	}
	for i := 0; i < w; i++ {
		ws := in.workers[i]
		for pid, buf := range ws.bufs {
			buf.ClearRetain()
			in.bufFree[buf.Arity()] = append(in.bufFree[buf.Arity()], buf)
			delete(ws.bufs, pid)
		}
	}
	in.bufMu.Unlock()
}

// shardTask is one unit of parallel work: a rule, restricted to a
// contiguous span of hash buckets of its delta relation (span 0 =
// unrestricted rule-granular task), optionally carrying the compiled
// span-parameterized body the controller resolved for the rule this
// iteration (nil = interpret).
type shardTask struct {
	rule  *ir.UnionRuleOp
	shard int
	span  int
	unit  ShardUnit
	// steal, when non-nil, marks a work-stealing participation task: the
	// worker ignores shard/span and instead claims single buckets through
	// the rule's shared steal state (affinity pass first, cursor pass
	// second), running each claimed bucket as a span-1 restriction through
	// the same interpreted or compiled path a static span task uses.
	steal *stealState
}

// stealState coordinates one rule's work-stealing bucket claims for one
// iteration. cursor hands out candidate bucket indices; claims[b] is 0 while
// bucket b is unclaimed and worker+1 once a worker won it (CAS), so every
// bucket is executed exactly once no matter how affinity and cursor claims
// interleave. After the barrier the driver folds claims into the rule's
// affinity table.
type stealState struct {
	cursor atomic.Int64
	claims []atomic.Int32
}

// DefaultFanoutThreshold is the sequential-fast-path delta bound of the
// adaptive fan-out: iterations with fewer total delta tuples than this run
// in place, since at that size the per-task scheduling plus buffer-merge
// overhead exceeds the join work itself on every workload measured.
const DefaultFanoutThreshold = 256

// DefaultStealThreshold is the recommended skew ratio for
// Interp.StealThreshold: static contiguous spans tolerate the hottest delta
// bucket holding up to 3x the mean occupied bucket before the straggler-span
// wait exceeds the cost of per-bucket claim traffic.
const DefaultStealThreshold = 3.0

// fanoutDecision is the per-iteration execution strategy of the adaptive
// driver.
type fanoutDecision struct {
	sequential bool // run the iteration in place: no tasks, no buffers, no merge
	tasks      int  // shard tasks per rule (1 = rule-granular, unrestricted)
	steal      bool // work-stealing bucket claims instead of static contiguous spans
	parts      int  // participation tasks per rule when stealing (min(workers, occupied))
}

// chooseFanout picks the iteration's strategy from the live delta
// statistics — total delta cardinality, per-bucket occupancy, and per-bucket
// counts of the loop's predicates, all O(1) reads via
// stats.Catalog.ShardCard. Without AdaptiveFanout it keeps the static PR 2
// behaviour (fan out every iteration), though the task count is clamped to
// the occupied bucket count so a mostly-empty delta no longer pays dispatch
// overhead for empty spans; with AdaptiveFanout the statistics additionally
// select between the sequential fast path, rule-granular parallelism, and a
// bucket fan-out sized to the data and the worker count.
//
// Skew detection (StealThreshold > 0): with maxc the hottest bucket's delta
// count and mean = total/occupied the average over non-empty buckets, an
// iteration is skewed when maxc/mean >= StealThreshold. A skewed iteration
// switches from static contiguous spans to work-stealing bucket claims
// (dec.steal): any span containing the hot bucket would serialize the
// iteration behind one straggler task, while per-bucket claims let the
// workers that finish early drain the remaining buckets. Affinity heuristic:
// the driver remembers which worker claimed each bucket last iteration
// (Interp.affinity, folded from the claim table after the barrier) and each
// worker claims its previous buckets first, so a hot bucket's sub-relations
// stay on one worker across iterations instead of migrating with the
// arbitrary cursor order; only claims made through the shared cursor —
// work taken beyond the remembered assignment — count as Stats.Steals.
func (in *Interp) chooseFanout(n *ir.DoWhileOp) fanoutDecision {
	phys := in.Shards
	if phys < 2 {
		phys = 1
	}
	if cap(in.fanBuckets) < phys {
		in.fanBuckets = make([]bool, phys)
	}
	occ := in.fanBuckets[:phys]
	for s := range occ {
		occ[s] = false
	}
	if cap(in.fanCounts) < phys {
		in.fanCounts = make([]int, phys)
	}
	counts := in.fanCounts[:phys]
	for s := range counts {
		counts[s] = 0
	}
	src := stats.Catalog{Cat: in.Cat}
	total := 0
	for _, pid := range n.Preds {
		if phys > 1 && in.Cat.Pred(pid).Shards() == phys {
			for s := 0; s < phys; s++ {
				if c := src.ShardCard(pid, ir.SrcDelta, s); c > 0 {
					total += c
					counts[s] += c
					occ[s] = true
				}
			}
		} else if c := src.Card(pid, ir.SrcDelta); c > 0 {
			// No per-bucket statistics for this predicate: count it whole
			// and treat every bucket as occupied (it also contributes no
			// per-bucket counts, so it cannot fake a skew signal).
			total += c
			for s := range occ {
				occ[s] = true
			}
		}
	}
	occupied, maxc := 0, 0
	for s, o := range occ {
		if o {
			occupied++
		}
		if counts[s] > maxc {
			maxc = counts[s]
		}
	}
	if !in.AdaptiveFanout {
		// Static fan-out, clamped to the occupied buckets: Workers (or the
		// bucket count) exceeding the non-empty buckets used to emit empty
		// spans that still paid task dispatch. Spans always cover all
		// buckets, so fewer, wider spans lose no work.
		tasks := phys
		if tasks > occupied {
			tasks = occupied
		}
		if tasks < 1 {
			tasks = 1
		}
		dec := fanoutDecision{tasks: tasks}
		in.applySteal(&dec, phys, total, occupied, maxc)
		return dec
	}
	threshold := in.FanoutThreshold
	if threshold <= 0 {
		threshold = DefaultFanoutThreshold
	}
	if total < threshold {
		return fanoutDecision{sequential: true}
	}
	if phys < 2 {
		return fanoutDecision{tasks: 1}
	}
	// Effective fan-out: one task per ~grain delta rows, never more than
	// 4x the pool (diminishing balance returns) or the occupied buckets
	// (empty-bucket tasks are pure overhead).
	grain := threshold / 4
	if grain < 1 {
		grain = 1
	}
	w := in.workerCount()
	eff := total / grain
	if lim := 4 * w; eff > lim {
		eff = lim
	}
	if eff > occupied {
		eff = occupied
	}
	if eff > phys {
		eff = phys
	}
	if eff < 1 {
		eff = 1
	}
	dec := fanoutDecision{tasks: eff}
	in.applySteal(&dec, phys, total, occupied, maxc)
	return dec
}

// applySteal upgrades a fan-out decision to work-stealing bucket claims when
// stealing is enabled and the iteration's delta is skewed (see chooseFanout's
// doc for the formula). It snapshots the bucket occupancy for the claim
// loops: fanBuckets is scratch the merge barrier overwrites mid-iteration,
// and bucket 0 is forced occupied because the fan-out contract runs
// whole-relation subqueries (no delta atom) on the bucket-0 task only.
func (in *Interp) applySteal(dec *fanoutDecision, phys, total, occupied, maxc int) {
	if in.StealThreshold <= 0 || phys < 2 || occupied < 2 || in.workerCount() < 2 {
		return
	}
	if float64(maxc)*float64(occupied) < in.StealThreshold*float64(total) {
		return
	}
	dec.steal = true
	dec.parts = in.workerCount()
	if dec.parts > occupied {
		dec.parts = occupied
	}
	if cap(in.stealOcc) < phys {
		in.stealOcc = make([]bool, phys)
	}
	in.stealOcc = in.stealOcc[:phys]
	copy(in.stealOcc, in.fanBuckets[:phys])
	in.stealOcc[0] = true
}

// runLoopParallel evaluates one stratum loop with the independent rules of
// each iteration distributed over a bounded worker pool; with Shards > 1
// each rule additionally fans out as one task per delta bucket span, so a
// single large rule saturates the pool instead of serializing the
// iteration. Every worker reads only Derived/DeltaKnown relations — frozen
// for the duration of the iteration — and writes only its own private delta
// buffers, so the fan-out is race-free by construction; the buffers are
// merged into the real DeltaNew relations (with set-difference against
// Derived and duplicate elimination across workers) at the iteration
// barrier, and SwapClearOps stay sequential there.
//
// With AdaptiveFanout the task count is re-decided every iteration from the
// live delta statistics, and small-delta iterations bypass the machinery
// entirely: they interpret the body in place exactly like the sequential
// driver, spawning no tasks and touching no buffers.
func (in *Interp) runLoopParallel(n *ir.DoWhileOp) error {
	var pending []shardTask
	for {
		dec := in.chooseFanout(n)
		if dec.sequential {
			in.Stats.SeqIters++
			for _, c := range n.Body {
				if err := in.Exec(c); err != nil {
					return err
				}
			}
		} else {
			if dec.steal {
				in.Stats.SkewIters++
			}
			if err := in.runIterationTasks(n, dec, &pending); err != nil {
				return err
			}
		}
		in.Stats.Iterations++
		if in.Cancelled() {
			return ErrCancelled
		}
		if DeltasEmpty(in.Cat, n.Preds) {
			return nil
		}
	}
}

// runIterationTasks executes one iteration's body with rule evaluation
// fanned out over the pool: dec.tasks bucket-span tasks per rule (or, in a
// stealing iteration, dec.parts claim-participation tasks per rule), flushed
// at every non-union op so cross-rule ordering is preserved.
func (in *Interp) runIterationTasks(n *ir.DoWhileOp, dec fanoutDecision, pending *[]shardTask) error {
	nshards := in.Shards
	if nshards < 2 || (dec.tasks < 2 && !dec.steal) {
		nshards = 1
	}
	if nshards < 2 {
		dec.steal = false
	}
	// Distribute the buckets over dec.tasks contiguous spans (span 0 marks
	// the unrestricted rule-granular task).
	span := 0
	if nshards > 1 {
		span = (nshards + dec.tasks - 1) / dec.tasks
	}
	flush := func() error {
		if len(*pending) == 0 {
			return nil
		}
		defer func() { *pending = (*pending)[:0] }()
		w := in.poolSize(len(*pending))
		if w <= 1 {
			// Degenerate pool: evaluate each rule once, unsharded and in
			// place, writing DeltaNew directly like the sequential path —
			// through Exec, so a Controller's safe point still fires at the
			// rule node and sequential compiled units run exactly as they
			// did under the pre-shard-native sequential loop. Tasks of one
			// rule are contiguous; run the rule at its first task only
			// (participation tasks all carry shard 0).
			var last *ir.UnionRuleOp
			for _, t := range *pending {
				if t.rule == last || t.shard != 0 {
					continue
				}
				last = t.rule
				if err := in.Exec(t.rule); err != nil {
					return err
				}
			}
			return nil
		}
		// Compiled task bodies: only now is it known that a pool will
		// actually run, so resolve a unit per rule here — still on the
		// interpreter goroutine, before the workers spawn (the controller's
		// resolution state is single-threaded) — and stamp every task of
		// the rule (tasks of one rule are contiguous in pending).
		if sc := in.shardCtrl(); sc != nil {
			var lastRule *ir.UnionRuleOp
			var lastUnit ShardUnit
			for i := range *pending {
				t := &(*pending)[i]
				if t.rule != lastRule {
					lastRule = t.rule
					lastUnit = sc.ResolveShardUnit(t.rule, in)
				}
				t.unit = lastUnit
			}
		}
		in.ensureWorkers(w)
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			ws := in.workers[i]
			wid := i
			ws.err = nil
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ti := int(next.Add(1) - 1)
					if ti >= len(*pending) || ws.sub.Cancelled() {
						return
					}
					t := (*pending)[ti]
					if t.steal != nil {
						if err := in.runStealTask(ws, wid, t, nshards); err != nil {
							ws.err = err
							return
						}
						continue
					}
					if t.unit != nil {
						// Compiled task body: the unit applies the task's
						// bucket-span restriction itself and emits through
						// the worker's DerivationSink buffers.
						ws.sub.Stats.Compiled++
						if err := t.unit(ws.sub, t.shard, t.span, nshards); err != nil {
							ws.err = err
							return
						}
						continue
					}
					ws.sub.shard = t.shard
					ws.sub.shardSpan = t.span
					if t.span > 0 {
						ws.sub.shardTotal = nshards
					} else {
						ws.sub.shardTotal = 0
					}
					if err := ws.sub.interpret(t.rule); err != nil {
						ws.err = err
						return
					}
				}
			}()
		}
		wg.Wait()
		in.foldAffinity(*pending, nshards)
		return in.mergeWorkers(w)
	}
	for _, c := range n.Body {
		if ua, ok := c.(*ir.UnionAllOp); ok {
			for _, r := range ua.Rules {
				if dec.steal {
					// One shared claim table per rule; dec.parts identical
					// participation tasks keep the pool saturated while the
					// workers race over single-bucket claims. Participation
					// tasks carry shard 0 so the degenerate (w<=1) path's
					// run-each-rule-once contract holds unchanged.
					st := &stealState{claims: make([]atomic.Int32, nshards)}
					for p := 0; p < dec.parts; p++ {
						*pending = append(*pending, shardTask{rule: r, steal: st})
					}
					continue
				}
				if span == 0 {
					*pending = append(*pending, shardTask{rule: r})
					continue
				}
				for lo := 0; lo < nshards; lo += span {
					s := span
					if lo+s > nshards {
						s = nshards - lo
					}
					*pending = append(*pending, shardTask{rule: r, shard: lo, span: s})
				}
			}
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		if err := in.Exec(c); err != nil {
			return err
		}
	}
	return flush()
}

// runStealTask drains one rule's stealable buckets from worker wid's seat:
// an affinity pass over the buckets this worker won last iteration, then a
// cursor pass over the rest. Every claim is won by CAS on the rule's shared
// claim table, so however the concurrent participation tasks interleave each
// bucket runs exactly once, as a span-1 restriction through the same
// interpreted or compiled path a static span task uses. Only cursor-pass
// wins — work taken beyond the remembered assignment — count as
// Stats.Steals.
func (in *Interp) runStealTask(ws *workerState, wid int, t shardTask, nshards int) error {
	runBucket := func(b int) error {
		if t.unit != nil {
			ws.sub.Stats.Compiled++
			return t.unit(ws.sub, b, 1, nshards)
		}
		ws.sub.shard = b
		ws.sub.shardSpan = 1
		ws.sub.shardTotal = nshards
		return ws.sub.interpret(t.rule)
	}
	if aff := in.affinity[t.rule]; len(aff) == nshards {
		for b := 0; b < nshards; b++ {
			if int(aff[b]) != wid || !in.stealOcc[b] {
				continue
			}
			if !t.steal.claims[b].CompareAndSwap(0, int32(wid)+1) {
				continue
			}
			if ws.sub.Cancelled() {
				return nil
			}
			if err := runBucket(b); err != nil {
				return err
			}
		}
	}
	for {
		b := int(t.steal.cursor.Add(1) - 1)
		if b >= nshards {
			return nil
		}
		if !in.stealOcc[b] || !t.steal.claims[b].CompareAndSwap(0, int32(wid)+1) {
			continue
		}
		if ws.sub.Cancelled() {
			return nil
		}
		ws.sub.Stats.Steals++
		if err := runBucket(b); err != nil {
			return err
		}
	}
}

// foldAffinity records, after the barrier, which worker won each bucket of
// each stealing rule this iteration (claims[b]-1; unclaimed buckets read -1),
// so the next skewed iteration's affinity pass re-claims the same buckets and
// a hot bucket's sub-relations stay on one worker instead of migrating with
// the arbitrary cursor order. No-op for batches without steal tasks.
func (in *Interp) foldAffinity(pending []shardTask, nshards int) {
	var last *stealState
	for _, t := range pending {
		if t.steal == nil || t.steal == last {
			continue
		}
		last = t.steal
		if in.affinity == nil {
			in.affinity = make(map[*ir.UnionRuleOp][]int32)
		}
		aff := in.affinity[t.rule]
		if len(aff) != nshards {
			aff = make([]int32, nshards)
			in.affinity[t.rule] = aff
		}
		for b := 0; b < nshards; b++ {
			aff[b] = t.steal.claims[b].Load() - 1
		}
	}
}

// mergeTask is one unit of parallel merge work: one bucket of one sink
// predicate, drained across every worker's buffer.
type mergeTask struct {
	pid    storage.PredID
	bucket int
}

// mergeWorkers folds every worker's private delta buffers into the real
// DeltaNew relations (counting derivations exactly like the sequential
// sink: new to both Derived and DeltaNew) and accumulates worker execution
// counters. Runs at the iteration barrier.
//
// When the sinks carry the physically sharded backing store, the fold fans
// out as one task per (predicate, bucket) over the pool: task (p, b) drains
// bucket b of every worker's p-buffer into bucket b of p's DeltaNew — the
// buffers are partitioned with the identical key, so distinct tasks write
// disjoint sub-relations and the merge is race-free without a lock.
// Derivation counting moves into per-task counters summed after the join,
// removing the serial merge that bounded output-heavy fixpoints by Amdahl's
// law. Small merges (and non-physical sinks) keep the sequential fold, and
// buffers return to the free list either way.
func (in *Interp) mergeWorkers(w int) error {
	var firstErr error
	for i := 0; i < w; i++ {
		ws := in.workers[i]
		if ws.err != nil && firstErr == nil {
			firstErr = ws.err
		}
		s := ws.sub.Stats
		in.Stats.SPJRuns += s.SPJRuns
		in.Stats.PlanBuilds += s.PlanBuilds
		in.Stats.PlanReuses += s.PlanReuses
		in.Stats.Reopts += s.Reopts
		in.Stats.Compiled += s.Compiled
		in.Stats.Steals += s.Steals
		in.Stats.EstimatedRows += s.EstimatedRows
		ws.sub.Stats = Stats{}
	}
	if firstErr != nil {
		in.releaseBuffers(w)
		return firstErr
	}
	// Sink predicates with buffered derivations in dense id order, and the
	// total buffered volume steering the sequential-vs-bucketed decision.
	pids := in.mergePids[:0]
	total := 0
	for pid := storage.PredID(0); int(pid) < in.Cat.NumPreds(); pid++ {
		has := false
		for i := 0; i < w; i++ {
			if buf := in.workers[i].bufs[pid]; buf != nil && !buf.Empty() {
				total += buf.Len()
				has = true
			}
		}
		if has {
			pids = append(pids, pid)
		}
	}
	in.mergePids = pids
	threshold := in.FanoutThreshold
	if threshold <= 0 {
		threshold = DefaultFanoutThreshold
	}
	if in.Shards > 1 && total >= threshold && in.poolSize(2) > 1 {
		if tasks := in.bucketMergeTasks(pids, w); tasks != nil {
			in.runBucketMerge(tasks, w)
			in.releaseBuffers(w)
			return nil
		}
	}
	for _, pid := range pids {
		sink := in.Cat.Pred(pid)
		for i := 0; i < w; i++ {
			buf := in.workers[i].bufs[pid]
			if buf == nil || buf.Empty() {
				continue
			}
			// Workers already filtered buffered tuples against Derived, and
			// Derived is frozen from task fan-out through this merge (only
			// the sequential SwapClearOp after the barrier mutates it), so
			// the only remaining duplicates are across workers — DeltaNew's
			// own insert dedup handles those without re-probing Derived.
			buf.Each(func(row []storage.Value) bool {
				if sink.DeltaNew.Insert(row) {
					in.Stats.Derivations++
				}
				return true
			})
		}
	}
	in.releaseBuffers(w)
	return nil
}

// bucketMergeTasks builds the per-bucket merge task list, or nil when any
// buffered sink cannot be merged bucket-locally (not physically sharded, or
// a buffer's partition does not mirror the sink's — the conservative
// fallback is the sequential fold). Empty buckets get no task.
func (in *Interp) bucketMergeTasks(pids []storage.PredID, w int) []mergeTask {
	in.mergeTasks = in.mergeTasks[:0]
	for _, pid := range pids {
		pd := in.Cat.Pred(pid)
		if !pd.Physical() || pd.DeltaNew.PhysSubs() == nil {
			return nil
		}
		shards, col := pd.Shards(), pd.ShardKeyCol()
		if cap(in.fanBuckets) < shards {
			in.fanBuckets = make([]bool, shards)
		}
		occupied := in.fanBuckets[:shards]
		for s := range occupied {
			occupied[s] = false
		}
		for i := 0; i < w; i++ {
			buf := in.workers[i].bufs[pid]
			if buf == nil || buf.Empty() {
				continue
			}
			if bs, bc := buf.ShardConfig(); bs != shards || bc != col {
				return nil
			}
			for s := 0; s < shards; s++ {
				if buf.ShardLen(s) > 0 {
					occupied[s] = true
				}
			}
		}
		for s, occ := range occupied {
			if occ {
				in.mergeTasks = append(in.mergeTasks, mergeTask{pid: pid, bucket: s})
			}
		}
	}
	return in.mergeTasks
}

// runBucketMerge drains the merge tasks over the pool. Each task owns one
// disjoint DeltaNew bucket outright, so the only shared state is the atomic
// task cursor; per-task derivation counts land in a dense slice and are
// summed once the pool quiesces.
func (in *Interp) runBucketMerge(tasks []mergeTask, w int) {
	if cap(in.mergeCounts) < len(tasks) {
		in.mergeCounts = make([]int64, len(tasks))
	}
	counts := in.mergeCounts[:len(tasks)]
	mw := in.poolSize(len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < mw; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(next.Add(1) - 1)
				if ti >= len(tasks) {
					return
				}
				t := tasks[ti]
				sink := in.Cat.Pred(t.pid).DeltaNew
				var derived int64
				for i := 0; i < w; i++ {
					buf := in.workers[i].bufs[t.pid]
					if buf == nil {
						continue
					}
					buf.EachShard(t.bucket, func(row []storage.Value) bool {
						if sink.ShardInsert(t.bucket, row) {
							derived++
						}
						return true
					})
				}
				counts[ti] = derived
			}
		}()
	}
	wg.Wait()
	for _, c := range counts {
		in.Stats.Derivations += c
	}
	in.Stats.MergeTasks += int64(len(tasks))
}

// runPlanWith executes the plan with the chosen executor, routing every
// match (through the aggregation path when configured) into insert.
func runPlanWith(p *Plan, cat *storage.Catalog, exec Executor, insert func(t []storage.Value)) {
	execute := func(emit func(head, bind []storage.Value)) {
		if exec == ExecPull {
			NewPullExecutor(p, cat).Execute(emit)
		} else {
			p.Execute(cat, emit)
		}
	}
	if p.Agg.Kind == ast.AggNone {
		execute(func(head, _ []storage.Value) { insert(head) })
		return
	}
	agg := eval.NewAggregator(p.Agg.Kind, len(p.Head), p.Agg.HeadPos)
	execute(func(head, bind []storage.Value) {
		var v storage.Value
		if p.Agg.Kind != ast.AggCount {
			v = bind[p.Agg.OverVar]
		}
		agg.Add(head, v)
	})
	agg.Emit(insert)
}

// runPlanSink executes the plan against the standard semi-naive sink: set
// difference against Derived inlined at the insert into DeltaNew, returning
// the number of new tuples derived.
func runPlanSink(p *Plan, cat *storage.Catalog, exec Executor) int64 {
	sink := cat.Pred(p.Sink)
	var derived int64
	runPlanWith(p, cat, exec, func(t []storage.Value) {
		if sink.Derived.Contains(t) {
			return
		}
		if sink.DeltaNew.Insert(t) {
			derived++
		}
	})
	return derived
}

// runPlanBuffered executes the plan with derivations landing in a private
// buffer relation instead of the sink's DeltaNew (parallel rule evaluation).
// Set difference against the iteration-frozen Derived still applies here to
// keep buffers small; duplicate elimination across workers and against
// DeltaNew happens at the merge barrier.
func runPlanBuffered(p *Plan, cat *storage.Catalog, exec Executor, buf *storage.Relation) {
	sink := cat.Pred(p.Sink)
	runPlanWith(p, cat, exec, func(t []storage.Value) {
		if !sink.Derived.Contains(t) {
			buf.Insert(t)
		}
	})
}

// RunPlan executes a built plan with the push engine, sinking matches (via
// the aggregation path when configured) and returning the number of new
// tuples derived. Shared by the interpreter and the lambda/quote backends.
func RunPlan(p *Plan, cat *storage.Catalog) int64 {
	return runPlanSink(p, cat, ExecPush)
}
