package interp

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// ErrCancelled is returned when execution was aborted via Interp.Cancel
// (e.g. a benchmark timeout marking a configuration as DNF).
var ErrCancelled = errors.New("interp: execution cancelled")

// Controller is the JIT hook consulted at every IROp safe point. Enter may
// return a thunk to execute *instead of* interpreting op's subtree (a
// compiled unit), or nil to let interpretation proceed. A Controller may
// also mutate SPJ atom orders in place before returning nil (the
// IRGenerator backend).
type Controller interface {
	Enter(op ir.Op, in *Interp) func() error
}

// Yielder is an optional Controller extension: ShouldYield is polled from
// inside long-running subquery executions and, when it returns true, the
// interpreter abandons the subquery and immediately offers the controller a
// safe point — letting asynchronously compiled code take over "at the exact
// spot the interpreter left off" instead of waiting out a badly-ordered
// join (paper §V-B2). Abandonment is sound: the controller only yields when
// a unit subsuming the abandoned work is ready, and the interpreter re-runs
// the subquery itself if the controller declines after all.
type Yielder interface {
	ShouldYield(op ir.Op, in *Interp) bool
}

// Stats collects execution counters.
type Stats struct {
	Iterations  int64 // DoWhile loop passes
	Derivations int64 // tuples newly inserted into DeltaNew
	SPJRuns     int64 // subquery executions
	PlanBuilds  int64 // access plans constructed by the interpreter
	PlanReuses  int64 // subquery executions served from the plan cache
	Reopts      int64 // drift-triggered join-order re-optimizations
	Compiled    int64 // subtrees executed via a Controller thunk
}

// Interp is the tree-walking interpreter (paper §V-B: "when Carac is in
// interpretation mode, there is no further partial evaluation and the
// interpreter visits this IROp tree"). With a Controller attached it is the
// JIT's baseline execution mode between compilations.
type Interp struct {
	Cat   *storage.Catalog
	Ctrl  Controller
	Stats Stats

	// Executor selects push- or pull-based leaf-join execution (§V-D).
	Executor Executor

	// Parallel evaluates the independent rules of each DoWhile iteration
	// concurrently on a bounded worker pool — sound because the delta split
	// makes readers (Derived, DeltaKnown) frozen for the iteration and each
	// worker writes only its private delta buffer, merged into the real
	// DeltaNew relations at the iteration barrier (§V-D). Only honored
	// without a Controller (JIT state is single-threaded). Parallel=false is
	// the sequential fallback.
	Parallel bool
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int

	// Shards > 1 additionally fans each rule of a parallel iteration out as
	// one task per hash bucket of its delta relation (configured via
	// storage.PredicateDB.SetShards), so a single huge recursive rule — the
	// common shape in transitive-closure-style workloads — no longer
	// serializes the iteration: parallelism becomes bounded by data size,
	// not rule count. Only honored together with Parallel.
	Shards int

	// Plans, when non-nil, caches access plans across subquery executions
	// keyed by (rule, atom order, cardinality band): the repeated per-
	// execution planning the seed interpreter paid becomes a cache lookup,
	// re-planned only when observed cardinality drift exceeds the cache's
	// policy threshold. Shared by the pool workers.
	Plans *plancache.Cache[*Plan]
	// Reopt, when non-nil, is invoked when the plan cache reports a drift-
	// driven miss, giving the caller a chance to re-optimize the subquery's
	// join order with live statistics before the plan is rebuilt (the
	// adaptive policy of paper §IV, without any JIT attached). It returns
	// whether the atom order changed.
	Reopt func(spj *ir.SPJOp) bool

	cancel atomic.Bool
	// cancelHook chains a parent interpreter's cancellation into workers
	// spawned by parallel rule evaluation.
	cancelHook func() bool
	// bufSink, when non-nil, redirects subquery derivations into a private
	// per-worker buffer relation instead of the sink's DeltaNew (parallel
	// rule evaluation; merged at the iteration barrier).
	bufSink func(pred storage.PredID) *storage.Relation
	// shard/shardTotal restrict this (sub-)interpreter's subquery
	// executions to one hash bucket of each delta relation; shardTotal == 0
	// means unrestricted. Set per task by the sharded fan-out.
	shard      int
	shardTotal int
	// workers holds the lazily built pool state of runLoopParallel.
	workers []*workerState
	// keyMemo caches each subquery's structural plan-cache key, invalidated
	// via ir.SPJOp.OrderGen so the atoms are re-hashed only after a reorder
	// rather than per execution.
	keyMemo map[*ir.SPJOp]spjKeyMemo
	scratch vecScratch
}

type spjKeyMemo struct {
	gen int
	key plancache.Key
}

// vecScratch holds per-interpreter buffers reused for the per-execution
// cardinality and drift-counter vectors (the cache copies what it keeps, so
// reuse is safe; each pool worker owns its sub-interpreter's scratch).
type vecScratch struct {
	cards    []int
	counters []uint64
}

// keyFor returns the subquery's plan-cache key, memoized per atom order.
func (in *Interp) keyFor(spj *ir.SPJOp) plancache.Key {
	if m, ok := in.keyMemo[spj]; ok && m.gen == spj.OrderGen {
		return m.key
	}
	k := plancache.KeyFor(spj)
	if in.keyMemo == nil {
		in.keyMemo = make(map[*ir.SPJOp]spjKeyMemo)
	}
	in.keyMemo[spj] = spjKeyMemo{gen: spj.OrderGen, key: k}
	return k
}

// Cancel aborts the run at the next safe point (callable from any
// goroutine). Compiled units poll it in their loop heads.
func (in *Interp) Cancel() { in.cancel.Store(true) }

// Cancelled reports whether Cancel was called (here or on the parent).
func (in *Interp) Cancelled() bool {
	return in.cancel.Load() || (in.cancelHook != nil && in.cancelHook())
}

// New returns an interpreter over cat with an optional controller.
func New(cat *storage.Catalog, ctrl Controller) *Interp {
	return &Interp{Cat: cat, Ctrl: ctrl}
}

// Run executes the IR program to fixpoint.
func (in *Interp) Run(root ir.Op) error { return in.Exec(root) }

// Exec executes one IROp subtree, honoring controller safe points.
func (in *Interp) Exec(op ir.Op) error {
	if in.cancel.Load() {
		return ErrCancelled
	}
	if in.Ctrl != nil {
		if fn := in.Ctrl.Enter(op, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
	}
	return in.interpret(op)
}

// Interpret executes op without consulting the controller at this node
// (children still hit safe points). Compiled snippet continuations call
// this to hand control back to the interpreter.
func (in *Interp) Interpret(op ir.Op) error { return in.interpret(op) }

func (in *Interp) interpret(op ir.Op) error {
	switch n := op.(type) {
	case *ir.ProgramOp:
		for _, c := range n.Body {
			if err := in.Exec(c); err != nil {
				return err
			}
		}
		return nil

	case *ir.ScanOp:
		for _, pid := range n.Preds {
			p := in.Cat.Pred(pid)
			p.DeltaNew.InsertAll(p.Derived)
		}
		return nil

	case *ir.SwapClearOp:
		for _, pid := range n.Preds {
			in.Cat.Pred(pid).SwapClear()
		}
		return nil

	case *ir.DoWhileOp:
		if in.Parallel && in.Ctrl == nil {
			return in.runLoopParallel(n)
		}
		for {
			for _, c := range n.Body {
				if err := in.Exec(c); err != nil {
					return err
				}
			}
			in.Stats.Iterations++
			if DeltasEmpty(in.Cat, n.Preds) {
				return nil
			}
		}

	case *ir.UnionAllOp:
		for _, r := range n.Rules {
			if err := in.Exec(r); err != nil {
				return err
			}
		}
		return nil

	case *ir.UnionRuleOp:
		for _, s := range n.Subqueries {
			if err := in.Exec(s); err != nil {
				return err
			}
		}
		return nil

	case *ir.SPJOp:
		return in.execSPJ(n)
	}
	return fmt.Errorf("interp: unknown op %T", op)
}

// DeltasEmpty reports whether every listed predicate's DeltaKnown is empty —
// the DoWhile termination condition.
func DeltasEmpty(cat *storage.Catalog, preds []storage.PredID) bool {
	for _, pid := range preds {
		if !cat.Pred(pid).DeltaKnown.Empty() {
			return false
		}
	}
	return true
}

// planFor resolves the access plan for the subquery's current atom order:
// without a plan cache it builds one per execution (the interpretation
// overhead compiled backends avoid); with one it serves the cached plan
// while the drift-gated freshness policy holds, re-optimizing the join order
// via the Reopt hook when it does not. Cached plans are immutable; the
// returned copy carries this execution's Cancel/Yield state.
func (in *Interp) planFor(spj *ir.SPJOp) (*Plan, error) {
	if in.Plans == nil {
		in.Stats.PlanBuilds++
		return BuildPlan(spj, in.Cat)
	}
	src := stats.Catalog{Cat: in.Cat}
	cards := stats.AppendCardVector(in.scratch.cards[:0], spj, src)
	counters := stats.AppendCounterVector(in.scratch.counters[:0], spj, in.Cat)
	in.scratch.cards, in.scratch.counters = cards, counters
	key := in.keyFor(spj)
	if p, ok, stale := in.Plans.Lookup(key, counters, cards); ok {
		in.Stats.PlanReuses++
		cp := *p
		return &cp, nil
	} else if stale && in.Reopt != nil {
		in.Stats.Reopts++
		if in.Reopt(spj) {
			// The order changed: key and per-atom vectors follow the new
			// permutation, and the re-optimized order may already have a
			// plan cached from an earlier visit to this cardinality regime
			// (band return) — consult the cache again before rebuilding.
			key = in.keyFor(spj)
			cards = stats.AppendCardVector(cards[:0], spj, src)
			counters = stats.AppendCounterVector(counters[:0], spj, in.Cat)
			in.scratch.cards, in.scratch.counters = cards, counters
			if p, ok, _ := in.Plans.Lookup(key, counters, cards); ok {
				in.Stats.PlanReuses++
				cp := *p
				return &cp, nil
			}
		}
	}
	p, err := BuildPlan(spj, in.Cat)
	if err != nil {
		return nil, err
	}
	in.Stats.PlanBuilds++
	in.Plans.Store(key, counters, cards, p)
	cp := *p
	return &cp, nil
}

// shardSkip reports whether this shard task can skip the subquery without
// planning it: subqueries without a delta atom are whole-relation work that
// shard 0 runs alone (so the fan-out neither duplicates nor drops them), and
// a task whose delta bucket is empty cannot derive anything — the per-shard
// cardinality statistic makes that an O(1) test.
func (in *Interp) shardSkip(spj *ir.SPJOp) bool {
	idx := spj.DeltaAtom()
	if idx < 0 {
		return in.shard != 0
	}
	pred := spj.Atoms[idx].Pred
	if in.Cat.Pred(pred).Shards() == in.shardTotal {
		src := stats.Catalog{Cat: in.Cat}
		return src.ShardCard(pred, ir.SrcDelta, in.shard) == 0
	}
	return false
}

// applyShard installs the task's delta-bucket restriction on the plan copy:
// the first relational step reading SrcDelta admits only rows of bucket
// in.shard, keyed by the column storage partitioned the predicate on.
func (in *Interp) applyShard(plan *Plan) {
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if st.Src != ir.SrcDelta {
			continue
		}
		if st.Kind != StepScan && st.Kind != StepProbe && st.Kind != StepProbeN {
			continue
		}
		plan.ShardStep = i
		plan.Shard = in.shard
		plan.ShardCount = in.shardTotal
		plan.ShardKeyCol = in.Cat.Pred(st.Pred).ShardKeyCol()
		return
	}
}

// execSPJ interprets one subquery: it resolves an access plan for the
// current atom order (cached or freshly built) and streams matches into the
// sink via the configured executor.
func (in *Interp) execSPJ(spj *ir.SPJOp) error {
	if in.shardTotal > 1 && in.shardSkip(spj) {
		return nil
	}
	plan, err := in.planFor(spj)
	if err != nil {
		return err
	}
	if in.shardTotal > 1 {
		in.applyShard(plan)
	}
	plan.Cancel = in.Cancelled
	if y, ok := in.Ctrl.(Yielder); ok {
		plan.Yield = func() bool { return y.ShouldYield(spj, in) }
	}
	in.Stats.SPJRuns++
	run := func() {
		if in.bufSink != nil {
			// Parallel rule evaluation: derivations land in this worker's
			// private buffer and are counted at the merge barrier.
			runPlanBuffered(plan, in.Cat, in.Executor, in.bufSink(plan.Sink))
		} else if in.Executor == ExecPull {
			in.Stats.Derivations += RunPlanPull(plan, in.Cat)
		} else {
			in.Stats.Derivations += RunPlan(plan, in.Cat)
		}
	}
	run()
	if plan.Yielded {
		// A compiled ancestor became ready mid-join: hand over now.
		if fn := in.Ctrl.Enter(spj, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
		// Controller declined (e.g. unit went stale): finish interpreted.
		plan.Yield = nil
		plan.Yielded = false
		run()
	}
	return nil
}

// workerState is the persistent per-worker state of the parallel rule pool:
// a sub-interpreter (sharing the read-only catalog and the plan cache) and
// the private delta buffers its derivations land in between barriers.
type workerState struct {
	sub  *Interp
	bufs map[storage.PredID]*storage.Relation
	err  error
}

// poolSize resolves the bounded worker count: the configured Workers, or
// GOMAXPROCS, never more than there are tasks.
func (in *Interp) poolSize(tasks int) int {
	w := in.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	return w
}

// ensureWorkers sizes the persistent pool state.
func (in *Interp) ensureWorkers(n int) {
	for len(in.workers) < n {
		ws := &workerState{
			sub:  &Interp{Cat: in.Cat, Executor: in.Executor, Plans: in.Plans, Reopt: in.Reopt, cancelHook: in.Cancelled},
			bufs: make(map[storage.PredID]*storage.Relation),
		}
		ws.sub.bufSink = func(pid storage.PredID) *storage.Relation {
			r := ws.bufs[pid]
			if r == nil {
				pd := in.Cat.Pred(pid)
				r = storage.NewRelation(pd.Name+"~buf", pd.Arity)
				ws.bufs[pid] = r
			}
			return r
		}
		in.workers = append(in.workers, ws)
	}
}

// shardTask is one unit of parallel work: a rule, restricted to one hash
// bucket of its delta relation (shard 0 of 1 when sharding is off).
type shardTask struct {
	rule  *ir.UnionRuleOp
	shard int
}

// runLoopParallel evaluates one stratum loop with the independent rules of
// each iteration distributed over a bounded worker pool; with Shards > 1
// each rule additionally fans out as one task per delta bucket, so a single
// large rule saturates the pool instead of serializing the iteration. Every
// worker reads only Derived/DeltaKnown relations — frozen for the duration
// of the iteration — and writes only its own private delta buffers, so the
// fan-out is race-free by construction; the buffers are merged into the real
// DeltaNew relations (with set-difference against Derived and duplicate
// elimination across workers) at the iteration barrier, and SwapClearOps
// stay sequential there.
func (in *Interp) runLoopParallel(n *ir.DoWhileOp) error {
	nshards := in.Shards
	if nshards < 2 {
		nshards = 1
	}
	var pending []shardTask
	for {
		flush := func() error {
			if len(pending) == 0 {
				return nil
			}
			defer func() { pending = pending[:0] }()
			w := in.poolSize(len(pending))
			if w <= 1 {
				// Degenerate pool: evaluate each rule once, unsharded and in
				// place, writing DeltaNew directly like the sequential path.
				for _, t := range pending {
					if t.shard != 0 {
						continue
					}
					if err := in.interpret(t.rule); err != nil {
						return err
					}
				}
				return nil
			}
			in.ensureWorkers(w)
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				ws := in.workers[i]
				ws.err = nil
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						ti := int(next.Add(1) - 1)
						if ti >= len(pending) || ws.sub.Cancelled() {
							return
						}
						t := pending[ti]
						ws.sub.shard = t.shard
						if nshards > 1 {
							ws.sub.shardTotal = nshards
						} else {
							ws.sub.shardTotal = 0
						}
						if err := ws.sub.interpret(t.rule); err != nil {
							ws.err = err
							return
						}
					}
				}()
			}
			wg.Wait()
			return in.mergeWorkers(w)
		}
		for _, c := range n.Body {
			if ua, ok := c.(*ir.UnionAllOp); ok {
				for _, r := range ua.Rules {
					for s := 0; s < nshards; s++ {
						pending = append(pending, shardTask{rule: r, shard: s})
					}
				}
				continue
			}
			if err := flush(); err != nil {
				return err
			}
			if err := in.Exec(c); err != nil {
				return err
			}
		}
		if err := flush(); err != nil {
			return err
		}
		in.Stats.Iterations++
		if in.Cancelled() {
			return ErrCancelled
		}
		if DeltasEmpty(in.Cat, n.Preds) {
			return nil
		}
	}
}

// mergeWorkers folds every worker's private delta buffers into the real
// DeltaNew relations (counting derivations exactly like the sequential
// sink: new to both Derived and DeltaNew) and accumulates worker execution
// counters. Runs sequentially at the iteration barrier.
func (in *Interp) mergeWorkers(w int) error {
	var firstErr error
	for i := 0; i < w; i++ {
		ws := in.workers[i]
		if ws.err != nil && firstErr == nil {
			firstErr = ws.err
		}
		s := ws.sub.Stats
		in.Stats.SPJRuns += s.SPJRuns
		in.Stats.PlanBuilds += s.PlanBuilds
		in.Stats.PlanReuses += s.PlanReuses
		in.Stats.Reopts += s.Reopts
		ws.sub.Stats = Stats{}
		if firstErr != nil {
			continue
		}
		pids := make([]int, 0, len(ws.bufs))
		for pid := range ws.bufs {
			pids = append(pids, int(pid))
		}
		sort.Ints(pids)
		for _, pid := range pids {
			buf := ws.bufs[storage.PredID(pid)]
			if buf.Empty() {
				continue
			}
			sink := in.Cat.Pred(storage.PredID(pid))
			// Workers already filtered buffered tuples against Derived, and
			// Derived is frozen from task fan-out through this merge (only
			// the sequential SwapClearOp after the barrier mutates it), so
			// the only remaining duplicates are across workers — DeltaNew's
			// own insert dedup handles those without re-probing Derived.
			buf.Each(func(row []storage.Value) bool {
				if sink.DeltaNew.Insert(row) {
					in.Stats.Derivations++
				}
				return true
			})
			buf.Clear()
		}
	}
	return firstErr
}

// runPlanWith executes the plan with the chosen executor, routing every
// match (through the aggregation path when configured) into insert.
func runPlanWith(p *Plan, cat *storage.Catalog, exec Executor, insert func(t []storage.Value)) {
	execute := func(emit func(head, bind []storage.Value)) {
		if exec == ExecPull {
			NewPullExecutor(p, cat).Execute(emit)
		} else {
			p.Execute(cat, emit)
		}
	}
	if p.Agg.Kind == ast.AggNone {
		execute(func(head, _ []storage.Value) { insert(head) })
		return
	}
	agg := eval.NewAggregator(p.Agg.Kind, len(p.Head), p.Agg.HeadPos)
	execute(func(head, bind []storage.Value) {
		var v storage.Value
		if p.Agg.Kind != ast.AggCount {
			v = bind[p.Agg.OverVar]
		}
		agg.Add(head, v)
	})
	agg.Emit(insert)
}

// runPlanSink executes the plan against the standard semi-naive sink: set
// difference against Derived inlined at the insert into DeltaNew, returning
// the number of new tuples derived.
func runPlanSink(p *Plan, cat *storage.Catalog, exec Executor) int64 {
	sink := cat.Pred(p.Sink)
	var derived int64
	runPlanWith(p, cat, exec, func(t []storage.Value) {
		if sink.Derived.Contains(t) {
			return
		}
		if sink.DeltaNew.Insert(t) {
			derived++
		}
	})
	return derived
}

// runPlanBuffered executes the plan with derivations landing in a private
// buffer relation instead of the sink's DeltaNew (parallel rule evaluation).
// Set difference against the iteration-frozen Derived still applies here to
// keep buffers small; duplicate elimination across workers and against
// DeltaNew happens at the merge barrier.
func runPlanBuffered(p *Plan, cat *storage.Catalog, exec Executor, buf *storage.Relation) {
	sink := cat.Pred(p.Sink)
	runPlanWith(p, cat, exec, func(t []storage.Value) {
		if !sink.Derived.Contains(t) {
			buf.Insert(t)
		}
	})
}

// RunPlan executes a built plan with the push engine, sinking matches (via
// the aggregation path when configured) and returning the number of new
// tuples derived. Shared by the interpreter and the lambda/quote backends.
func RunPlan(p *Plan, cat *storage.Catalog) int64 {
	return runPlanSink(p, cat, ExecPush)
}
