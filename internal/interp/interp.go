package interp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/ir"
	"carac/internal/storage"
)

// ErrCancelled is returned when execution was aborted via Interp.Cancel
// (e.g. a benchmark timeout marking a configuration as DNF).
var ErrCancelled = errors.New("interp: execution cancelled")

// Controller is the JIT hook consulted at every IROp safe point. Enter may
// return a thunk to execute *instead of* interpreting op's subtree (a
// compiled unit), or nil to let interpretation proceed. A Controller may
// also mutate SPJ atom orders in place before returning nil (the
// IRGenerator backend).
type Controller interface {
	Enter(op ir.Op, in *Interp) func() error
}

// Yielder is an optional Controller extension: ShouldYield is polled from
// inside long-running subquery executions and, when it returns true, the
// interpreter abandons the subquery and immediately offers the controller a
// safe point — letting asynchronously compiled code take over "at the exact
// spot the interpreter left off" instead of waiting out a badly-ordered
// join (paper §V-B2). Abandonment is sound: the controller only yields when
// a unit subsuming the abandoned work is ready, and the interpreter re-runs
// the subquery itself if the controller declines after all.
type Yielder interface {
	ShouldYield(op ir.Op, in *Interp) bool
}

// Stats collects execution counters.
type Stats struct {
	Iterations  int64 // DoWhile loop passes
	Derivations int64 // tuples newly inserted into DeltaNew
	SPJRuns     int64 // subquery executions
	PlanBuilds  int64 // access plans constructed by the interpreter
	Compiled    int64 // subtrees executed via a Controller thunk
}

// Interp is the tree-walking interpreter (paper §V-B: "when Carac is in
// interpretation mode, there is no further partial evaluation and the
// interpreter visits this IROp tree"). With a Controller attached it is the
// JIT's baseline execution mode between compilations.
type Interp struct {
	Cat   *storage.Catalog
	Ctrl  Controller
	Stats Stats

	// Executor selects push- or pull-based leaf-join execution (§V-D).
	Executor Executor

	// Parallel evaluates the UnionAllOps of each DoWhile iteration on
	// separate goroutines — sound because the delta split makes readers
	// (Derived, DeltaKnown) and writers (each predicate's own DeltaNew)
	// disjoint within an iteration (§V-D). Only honored without a
	// Controller (JIT state is single-threaded).
	Parallel bool

	cancel atomic.Bool
	// cancelHook chains a parent interpreter's cancellation into workers
	// spawned by parallel union evaluation.
	cancelHook func() bool
}

// Cancel aborts the run at the next safe point (callable from any
// goroutine). Compiled units poll it in their loop heads.
func (in *Interp) Cancel() { in.cancel.Store(true) }

// Cancelled reports whether Cancel was called (here or on the parent).
func (in *Interp) Cancelled() bool {
	return in.cancel.Load() || (in.cancelHook != nil && in.cancelHook())
}

// New returns an interpreter over cat with an optional controller.
func New(cat *storage.Catalog, ctrl Controller) *Interp {
	return &Interp{Cat: cat, Ctrl: ctrl}
}

// Run executes the IR program to fixpoint.
func (in *Interp) Run(root ir.Op) error { return in.Exec(root) }

// Exec executes one IROp subtree, honoring controller safe points.
func (in *Interp) Exec(op ir.Op) error {
	if in.cancel.Load() {
		return ErrCancelled
	}
	if in.Ctrl != nil {
		if fn := in.Ctrl.Enter(op, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
	}
	return in.interpret(op)
}

// Interpret executes op without consulting the controller at this node
// (children still hit safe points). Compiled snippet continuations call
// this to hand control back to the interpreter.
func (in *Interp) Interpret(op ir.Op) error { return in.interpret(op) }

func (in *Interp) interpret(op ir.Op) error {
	switch n := op.(type) {
	case *ir.ProgramOp:
		for _, c := range n.Body {
			if err := in.Exec(c); err != nil {
				return err
			}
		}
		return nil

	case *ir.ScanOp:
		for _, pid := range n.Preds {
			p := in.Cat.Pred(pid)
			p.DeltaNew.InsertAll(p.Derived)
		}
		return nil

	case *ir.SwapClearOp:
		for _, pid := range n.Preds {
			in.Cat.Pred(pid).SwapClear()
		}
		return nil

	case *ir.DoWhileOp:
		if in.Parallel && in.Ctrl == nil {
			return in.runLoopParallel(n)
		}
		for {
			for _, c := range n.Body {
				if err := in.Exec(c); err != nil {
					return err
				}
			}
			in.Stats.Iterations++
			if DeltasEmpty(in.Cat, n.Preds) {
				return nil
			}
		}

	case *ir.UnionAllOp:
		for _, r := range n.Rules {
			if err := in.Exec(r); err != nil {
				return err
			}
		}
		return nil

	case *ir.UnionRuleOp:
		for _, s := range n.Subqueries {
			if err := in.Exec(s); err != nil {
				return err
			}
		}
		return nil

	case *ir.SPJOp:
		return in.execSPJ(n)
	}
	return fmt.Errorf("interp: unknown op %T", op)
}

// DeltasEmpty reports whether every listed predicate's DeltaKnown is empty —
// the DoWhile termination condition.
func DeltasEmpty(cat *storage.Catalog, preds []storage.PredID) bool {
	for _, pid := range preds {
		if !cat.Pred(pid).DeltaKnown.Empty() {
			return false
		}
	}
	return true
}

// execSPJ interprets one subquery: it builds an access plan for the current
// atom order (every time — this repeated planning is the interpretation
// overhead compiled backends avoid) and streams matches into the sink via
// the configured executor.
func (in *Interp) execSPJ(spj *ir.SPJOp) error {
	plan, err := BuildPlan(spj, in.Cat)
	if err != nil {
		return err
	}
	plan.Cancel = in.Cancelled
	if y, ok := in.Ctrl.(Yielder); ok {
		plan.Yield = func() bool { return y.ShouldYield(spj, in) }
	}
	in.Stats.PlanBuilds++
	in.Stats.SPJRuns++
	run := func() {
		if in.Executor == ExecPull {
			in.Stats.Derivations += RunPlanPull(plan, in.Cat)
		} else {
			in.Stats.Derivations += RunPlan(plan, in.Cat)
		}
	}
	run()
	if plan.Yielded {
		// A compiled ancestor became ready mid-join: hand over now.
		if fn := in.Ctrl.Enter(spj, in); fn != nil {
			in.Stats.Compiled++
			return fn()
		}
		// Controller declined (e.g. unit went stale): finish interpreted.
		plan.Yield = nil
		plan.Yielded = false
		run()
	}
	return nil
}

// runLoopParallel evaluates one stratum loop with the UnionAllOps of each
// iteration fanned out to goroutines. Each UnionAllOp writes only its own
// predicate's DeltaNew and reads only Derived/DeltaKnown relations, which
// are frozen for the duration of the iteration, so the fan-out is race-free
// by construction; SwapClearOps stay sequential at the iteration boundary.
func (in *Interp) runLoopParallel(n *ir.DoWhileOp) error {
	for {
		var pending []*ir.UnionAllOp
		flush := func() error {
			if len(pending) == 0 {
				return nil
			}
			errs := make([]error, len(pending))
			stats := make([]Stats, len(pending))
			var wg sync.WaitGroup
			for i, ua := range pending {
				wg.Add(1)
				go func(i int, ua *ir.UnionAllOp) {
					defer wg.Done()
					sub := &Interp{Cat: in.Cat, Executor: in.Executor, cancelHook: in.Cancelled}
					errs[i] = sub.interpret(ua)
					stats[i] = sub.Stats
				}(i, ua)
			}
			wg.Wait()
			pending = pending[:0]
			for i, err := range errs {
				if err != nil {
					return err
				}
				in.Stats.Derivations += stats[i].Derivations
				in.Stats.SPJRuns += stats[i].SPJRuns
				in.Stats.PlanBuilds += stats[i].PlanBuilds
			}
			return nil
		}
		for _, c := range n.Body {
			if ua, ok := c.(*ir.UnionAllOp); ok {
				pending = append(pending, ua)
				continue
			}
			if err := flush(); err != nil {
				return err
			}
			if err := in.Exec(c); err != nil {
				return err
			}
		}
		if err := flush(); err != nil {
			return err
		}
		in.Stats.Iterations++
		if in.Cancelled() {
			return ErrCancelled
		}
		if DeltasEmpty(in.Cat, n.Preds) {
			return nil
		}
	}
}

// RunPlan executes a built plan, sinking matches (via the aggregation path
// when configured) and returning the number of new tuples derived. Shared by
// the interpreter and the lambda/quote backends.
func RunPlan(p *Plan, cat *storage.Catalog) int64 {
	sink := cat.Pred(p.Sink)
	var derived int64
	insert := func(t []storage.Value) {
		if sink.Derived.Contains(t) {
			return
		}
		if sink.DeltaNew.Insert(t) {
			derived++
		}
	}
	if p.Agg.Kind == ast.AggNone {
		p.Execute(cat, func(head, _ []storage.Value) { insert(head) })
		return derived
	}
	agg := eval.NewAggregator(p.Agg.Kind, len(p.Head), p.Agg.HeadPos)
	p.Execute(cat, func(head, bind []storage.Value) {
		var v storage.Value
		if p.Agg.Kind != ast.AggCount {
			v = bind[p.Agg.OverVar]
		}
		agg.Add(head, v)
	})
	agg.Emit(insert)
	return derived
}
