// Package datagen provides the seeded synthetic fact generators that stand
// in for the paper's proprietary datasets (see DESIGN.md §2, Substitutions):
//
//   - CSPAGraph / CSDAGraph replace the Graspan httpd extractions (~1.5M
//     facts in the paper). The generators produce program-shaped edge sets —
//     assignment chains with cross-links and dereference maps — tuned so the
//     delta×derived cartesian product that §IV's worked example describes
//     actually dominates under the "unoptimized" atom orders.
//   - SListLib replaces the TASTy-extracted facts of the paper's 200-line
//     Scala linked-list library: Andersen-style points-to facts plus call
//     and inverse facts containing the serialize/deserialize round-trip the
//     Inverse-Functions analysis must find.
//
// All generators are deterministic in (size, seed).
package datagen

import "math/rand"

// Edge is one binary fact.
type Edge struct{ Src, Dst int32 }

// CSPAFacts is the input of the context-sensitive pointer analysis: Assign
// (value assignments between program variables) and Derefr (dereference
// edges from pointer variables to memory objects).
type CSPAFacts struct {
	Assign []Edge
	Derefr []Edge
	NumVar int32
}

// CSPAGraph generates a CSPA input of roughly n facts. The structure mixes
// assignment chains (long value-flow paths → many fixpoint iterations),
// cross-links between chains (fan-in/fan-out → quadratic VAlias growth), and
// a dereference layer mapping a subset of variables onto shared memory
// objects (→ MAlias join fan-out). The 60/40 Assign/Derefr split mirrors the
// shape of Graspan's httpd extraction.
func CSPAGraph(n int, seed int64) *CSPAFacts {
	rng := rand.New(rand.NewSource(seed))
	f := &CSPAFacts{}

	nAssign := n * 6 / 10
	nDeref := n - nAssign

	const chainLen = 24
	chains := nAssign * 3 / 4 / chainLen
	if chains < 1 {
		chains = 1
	}
	var next int32
	newVar := func() int32 { next++; return next - 1 }

	chainHeads := make([]int32, 0, chains)
	chainVars := make([]int32, 0, chains*chainLen)
	for c := 0; c < chains; c++ {
		prev := newVar()
		chainHeads = append(chainHeads, prev)
		chainVars = append(chainVars, prev)
		for i := 1; i < chainLen && len(f.Assign) < nAssign; i++ {
			v := newVar()
			// Assign(v1, v3) means v1 := v3 (value flows v3 -> v1).
			f.Assign = append(f.Assign, Edge{Src: v, Dst: prev})
			chainVars = append(chainVars, v)
			prev = v
		}
	}
	// Cross-links: connect random chain positions, creating fan-in hubs.
	for len(f.Assign) < nAssign {
		a := chainVars[rng.Intn(len(chainVars))]
		b := chainVars[rng.Intn(len(chainVars))]
		if a == b {
			continue
		}
		f.Assign = append(f.Assign, Edge{Src: a, Dst: b})
	}

	// Dereference layer: group variables onto shared memory objects so that
	// MAlias/VAlias fan out. A skewed pick (small object pool) concentrates
	// aliases the way heap allocation sites do.
	objects := int32(nDeref / 6)
	if objects < 2 {
		objects = 2
	}
	for i := 0; i < nDeref; i++ {
		v := chainVars[rng.Intn(len(chainVars))]
		o := next + rng.Int31n(objects)
		f.Derefr = append(f.Derefr, Edge{Src: v, Dst: o})
	}
	f.NumVar = next + objects
	return f
}

// CSDAFacts is the input of the context-sensitive dataflow analysis:
// NullEdge seeds (expressions that may be null) and FlowEdge transfer edges.
type CSDAFacts struct {
	NullEdge []Edge
	FlowEdge []Edge
}

// CSDAGraph generates a CSDA input of roughly n facts: a layered transfer
// graph (DAG with branching, so NullFlow grows by reachability) with ~10%
// null seeds at the sources. Only 2-way joins arise from this analysis,
// matching the paper's note that CSDA gains come purely from build/probe
// side selection.
func CSDAGraph(n int, seed int64) *CSDAFacts {
	rng := rand.New(rand.NewSource(seed))
	f := &CSDAFacts{}
	nNull := n / 10
	nFlow := n - nNull

	const width = 48
	layers := nFlow / width
	if layers < 2 {
		layers = 2
	}
	id := func(layer, pos int) int32 { return int32(layer*width + pos) }
	for len(f.FlowEdge) < nFlow {
		l := rng.Intn(layers - 1)
		a := id(l, rng.Intn(width))
		b := id(l+1, rng.Intn(width))
		f.FlowEdge = append(f.FlowEdge, Edge{Src: a, Dst: b})
	}
	for i := 0; i < nNull; i++ {
		// Null values originate near the sources and flow down the DAG.
		l := rng.Intn(2)
		f.NullEdge = append(f.NullEdge, Edge{Src: id(l, rng.Intn(width)), Dst: id(l+1, rng.Intn(width))})
	}
	return f
}

// PointsToFacts is the Andersen/Inverse-Functions input: alloc, move, load,
// store edges over variables and heap objects, call facts (ret = fn(arg)),
// and inverse(g, f) declarations.
type PointsToFacts struct {
	Alloc []Edge // var -> heap object
	Move  []Edge // dst := src
	Load  []Edge // dst = *src
	Store []Edge // *dst = src

	// Call (Ret = Fn(Arg)); Fn is a symbol id index into FnNames.
	Call    []Call
	Inverse [][2]string
	FnNames []string
}

// Call is ret = fn(arg).
type Call struct {
	Ret int32
	Fn  string
	Arg int32
}

// SListLib generates the facts of the paper's SListLib scenario: a linked
// list library with serialize/deserialize functions, an entry point that
// builds a list, operates on it, serializes, computes, deserializes, and
// returns — i.e. a round-trip of inverse functions over aliased values that
// the Inverse-Functions analysis must flag as wasted work. scale multiplies
// the library body (1 ≈ the paper's ~200-line program).
func SListLib(scale int, seed int64) *PointsToFacts {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	f := &PointsToFacts{
		Inverse: [][2]string{{"deserialize", "serialize"}, {"from_json", "to_json"}},
		FnNames: []string{"serialize", "deserialize", "to_json", "from_json", "map", "fold", "cons", "head", "tail"},
	}
	var next int32
	newVar := func() int32 { next++; return next - 1 }
	var heap int32 = 1 << 20 // heap object ids live in their own range

	for s := 0; s < scale; s++ {
		// The list cells: a chain of cons allocations.
		cells := make([]int32, 0, 24)
		for i := 0; i < 24; i++ {
			v := newVar()
			f.Alloc = append(f.Alloc, Edge{Src: v, Dst: heap})
			heap++
			cells = append(cells, v)
			if i > 0 {
				// next pointers: *cells[i] = cells[i-1]
				f.Store = append(f.Store, Edge{Src: cells[i], Dst: cells[i-1]})
			}
		}
		// Library operations: moves and loads over the cells.
		for i := 0; i < 40; i++ {
			a := cells[rng.Intn(len(cells))]
			v := newVar()
			if i%2 == 0 {
				f.Move = append(f.Move, Edge{Src: v, Dst: a})
			} else {
				f.Load = append(f.Load, Edge{Src: v, Dst: a})
			}
		}
		// The entry point's round trip:
		//   list := cons(...)          (aliases the cells)
		//   blob := serialize(list)
		//   tmp  := blob               (some computation)
		//   list2 := deserialize(tmp)
		//   use(list2)
		list := newVar()
		f.Move = append(f.Move, Edge{Src: list, Dst: cells[len(cells)-1]})
		blob := newVar()
		f.Call = append(f.Call, Call{Ret: blob, Fn: "serialize", Arg: list})
		f.Alloc = append(f.Alloc, Edge{Src: blob, Dst: heap})
		heap++
		tmp := newVar()
		f.Move = append(f.Move, Edge{Src: tmp, Dst: blob})
		list2 := newVar()
		f.Call = append(f.Call, Call{Ret: list2, Fn: "deserialize", Arg: tmp})
		f.Move = append(f.Move, Edge{Src: list2, Dst: cells[len(cells)-1]}) // deserialized list aliases the original cells
		use := newVar()
		f.Move = append(f.Move, Edge{Src: use, Dst: list2}) // the result is consumed
		// A harmless non-inverse call pair for contrast.
		j := newVar()
		f.Call = append(f.Call, Call{Ret: j, Fn: "to_json", Arg: list})
		m := newVar()
		f.Call = append(f.Call, Call{Ret: m, Fn: "map", Arg: j})
	}
	return f
}
