package datagen

import (
	"reflect"
	"testing"
)

func TestCSPAGraphDeterministic(t *testing.T) {
	a := CSPAGraph(2000, 42)
	b := CSPAGraph(2000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (size, seed) must generate identical facts")
	}
	c := CSPAGraph(2000, 43)
	if reflect.DeepEqual(a.Assign, c.Assign) {
		t.Fatal("different seeds should differ")
	}
}

func TestCSPAGraphShape(t *testing.T) {
	f := CSPAGraph(5000, 1)
	total := len(f.Assign) + len(f.Derefr)
	if total < 4500 || total > 5500 {
		t.Fatalf("total facts = %d, want ~5000", total)
	}
	// 60/40 split.
	if len(f.Assign) < total*5/10 || len(f.Assign) > total*7/10 {
		t.Fatalf("assign share wrong: %d of %d", len(f.Assign), total)
	}
	for _, e := range f.Assign {
		if e.Src < 0 || e.Dst < 0 || e.Src >= f.NumVar || e.Dst >= f.NumVar {
			t.Fatalf("edge out of range: %+v (numvar %d)", e, f.NumVar)
		}
	}
	// Dereference layer must share memory objects (alias fan-out).
	objs := map[int32]int{}
	for _, e := range f.Derefr {
		objs[e.Dst]++
	}
	shared := 0
	for _, n := range objs {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no shared memory objects: MAlias would be trivial")
	}
}

func TestCSDAGraphShape(t *testing.T) {
	f := CSDAGraph(3000, 7)
	total := len(f.NullEdge) + len(f.FlowEdge)
	if total < 2500 || total > 3500 {
		t.Fatalf("total = %d", total)
	}
	if len(f.NullEdge) == 0 {
		t.Fatal("no null seeds")
	}
	// Flow edges must go strictly forward (layered DAG: src layer < dst layer).
	for _, e := range f.FlowEdge {
		if e.Dst/48 != e.Src/48+1 {
			t.Fatalf("flow edge not layered: %+v", e)
		}
	}
}

func TestCSDAGraphDeterministic(t *testing.T) {
	if !reflect.DeepEqual(CSDAGraph(1000, 3), CSDAGraph(1000, 3)) {
		t.Fatal("CSDA generator not deterministic")
	}
}

func TestSListLibContainsRoundTrip(t *testing.T) {
	f := SListLib(1, 11)
	if len(f.Inverse) == 0 || f.Inverse[0] != [2]string{"deserialize", "serialize"} {
		t.Fatalf("inverse facts wrong: %v", f.Inverse)
	}
	var ser, deser bool
	for _, c := range f.Call {
		if c.Fn == "serialize" {
			ser = true
		}
		if c.Fn == "deserialize" {
			deser = true
		}
	}
	if !ser || !deser {
		t.Fatal("round trip calls missing")
	}
	if len(f.Alloc) == 0 || len(f.Move) == 0 || len(f.Store) == 0 {
		t.Fatal("points-to facts missing")
	}
}

func TestSListLibScales(t *testing.T) {
	small := SListLib(1, 5)
	big := SListLib(5, 5)
	if len(big.Alloc) <= len(small.Alloc) || len(big.Call) <= len(small.Call) {
		t.Fatal("scale parameter has no effect")
	}
	if !reflect.DeepEqual(SListLib(2, 9), SListLib(2, 9)) {
		t.Fatal("SListLib not deterministic")
	}
}
