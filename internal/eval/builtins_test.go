package eval

import (
	"testing"
	"testing/quick"

	"carac/internal/ast"
	"carac/internal/storage"
)

func TestCheckArithmetic(t *testing.T) {
	cases := []struct {
		b    ast.Builtin
		vals []storage.Value
		want bool
	}{
		{ast.BAdd, []storage.Value{2, 3, 5}, true},
		{ast.BAdd, []storage.Value{2, 3, 6}, false},
		{ast.BSub, []storage.Value{5, 3, 2}, true},
		{ast.BSub, []storage.Value{3, 5, 0}, false}, // natural subtraction
		{ast.BMul, []storage.Value{4, 3, 12}, true},
		{ast.BMul, []storage.Value{4, 3, 11}, false},
		{ast.BDiv, []storage.Value{7, 2, 3}, true},
		{ast.BDiv, []storage.Value{7, 0, 0}, false},
		{ast.BMod, []storage.Value{7, 3, 1}, true},
		{ast.BMod, []storage.Value{7, 0, 7}, false},
		{ast.BEq, []storage.Value{4, 4}, true},
		{ast.BNe, []storage.Value{4, 4}, false},
		{ast.BLt, []storage.Value{1, 2}, true},
		{ast.BLe, []storage.Value{2, 2}, true},
		{ast.BGt, []storage.Value{2, 2}, false},
		{ast.BGe, []storage.Value{2, 2}, true},
	}
	for i, c := range cases {
		if got := Check(c.b, c.vals); got != c.want {
			t.Errorf("case %d: Check(%v, %v) = %v, want %v", i, c.b, c.vals, got, c.want)
		}
	}
}

func TestSolvePositions(t *testing.T) {
	cases := []struct {
		b       ast.Builtin
		vals    []storage.Value
		unbound int
		want    storage.Value
		ok      bool
	}{
		{ast.BAdd, []storage.Value{2, 3, 0}, 2, 5, true},
		{ast.BAdd, []storage.Value{0, 3, 5}, 0, 2, true},
		{ast.BAdd, []storage.Value{2, 0, 5}, 1, 3, true},
		{ast.BAdd, []storage.Value{0, 7, 5}, 0, 0, false}, // would be negative
		{ast.BSub, []storage.Value{5, 3, 0}, 2, 2, true},
		{ast.BSub, []storage.Value{3, 5, 0}, 2, 0, false}, // underflow
		{ast.BSub, []storage.Value{0, 3, 2}, 0, 5, true},
		{ast.BSub, []storage.Value{9, 0, 2}, 1, 7, true},
		{ast.BMul, []storage.Value{4, 3, 0}, 2, 12, true},
		{ast.BMul, []storage.Value{0, 3, 12}, 0, 4, true},
		{ast.BMul, []storage.Value{0, 3, 13}, 0, 0, false}, // not divisible
		{ast.BMul, []storage.Value{0, 0, 12}, 0, 0, false}, // div by zero factor
		{ast.BDiv, []storage.Value{9, 2, 0}, 2, 4, true},
		{ast.BDiv, []storage.Value{9, 0, 0}, 2, 0, false},
		{ast.BMod, []storage.Value{9, 4, 0}, 2, 1, true},
		{ast.BEq, []storage.Value{0, 8}, 0, 8, true},
		{ast.BEq, []storage.Value{8, 0}, 1, 8, true},
		{ast.BLt, []storage.Value{0, 8}, 0, 0, false}, // comparisons don't solve
	}
	for i, c := range cases {
		got, ok := Solve(c.b, c.vals, c.unbound)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: Solve(%v, %v, %d) = %d,%v want %d,%v", i, c.b, c.vals, c.unbound, got, ok, c.want, c.ok)
		}
	}
}

func TestSolveRejectsSymbols(t *testing.T) {
	st := storage.NewSymbolTable()
	sym := st.Intern("foo")
	if _, ok := Solve(ast.BAdd, []storage.Value{sym, 1, 0}, 2); ok {
		t.Fatal("arithmetic over symbols must fail")
	}
	// Equality over symbols is fine.
	if v, ok := Solve(ast.BEq, []storage.Value{sym, 0}, 1); !ok || v != sym {
		t.Fatal("equality should copy symbols")
	}
}

func TestSolveOverflow(t *testing.T) {
	big := storage.Value(1<<31 - 1)
	if _, ok := Solve(ast.BAdd, []storage.Value{big, big, 0}, 2); ok {
		t.Fatal("overflowing add must fail")
	}
	if _, ok := Solve(ast.BMul, []storage.Value{big, 2, 0}, 2); ok {
		t.Fatal("overflowing mul must fail")
	}
}

// Property: Solve and Check agree — whenever Solve succeeds, Check holds on
// the completed tuple.
func TestSolveCheckConsistencyProperty(t *testing.T) {
	f := func(a, b uint16, which uint8) bool {
		builtins := []ast.Builtin{ast.BAdd, ast.BSub, ast.BMul}
		bu := builtins[int(which)%len(builtins)]
		vals := []storage.Value{storage.Value(a), storage.Value(b), 0}
		v, ok := Solve(bu, vals, 2)
		if !ok {
			return true // nothing to check (domain failure)
		}
		vals[2] = v
		return Check(bu, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorGrouping(t *testing.T) {
	a := NewAggregator(ast.AggCount, 2, 1)
	a.Add([]storage.Value{1, 0}, 0)
	a.Add([]storage.Value{1, 0}, 0)
	a.Add([]storage.Value{2, 0}, 0)
	if a.Len() != 2 {
		t.Fatalf("groups = %d", a.Len())
	}
	got := map[[2]storage.Value]bool{}
	a.Emit(func(tu []storage.Value) {
		got[[2]storage.Value{tu[0], tu[1]}] = true
	})
	if !got[[2]storage.Value{1, 2}] || !got[[2]storage.Value{2, 1}] {
		t.Fatalf("emit = %v", got)
	}
}

func TestAggregatorSumMinMax(t *testing.T) {
	for _, tc := range []struct {
		kind ast.AggKind
		want storage.Value
	}{
		{ast.AggSum, 60}, {ast.AggMin, 10}, {ast.AggMax, 30},
	} {
		a := NewAggregator(tc.kind, 2, 1)
		for _, v := range []storage.Value{10, 20, 30} {
			a.Add([]storage.Value{5, 0}, v)
		}
		var got storage.Value
		a.Emit(func(tu []storage.Value) { got = tu[1] })
		if got != tc.want {
			t.Errorf("%v = %d, want %d", tc.kind, got, tc.want)
		}
	}
}

func TestAggregatorSaturation(t *testing.T) {
	a := NewAggregator(ast.AggSum, 1, 0)
	for i := 0; i < 3; i++ {
		a.Add([]storage.Value{0}, 1<<31-1)
	}
	a.Emit(func(tu []storage.Value) {
		if tu[0] != 1<<31-1 {
			t.Fatalf("sum should saturate at MaxInt32, got %d", tu[0])
		}
	})
}
