// Package eval implements the runtime semantics of builtin arithmetic and
// comparison atoms and of aggregation operators. Arithmetic is defined over
// the non-negative 32-bit integer domain: symbol ids (negative values) and
// results that leave the domain simply fail to derive, which keeps bottom-up
// fixpoints finite and mirrors bounded-arithmetic Datalog practice.
package eval

import (
	"math"

	"carac/internal/ast"
	"carac/internal/storage"
)

// inDomain reports whether v is a legal arithmetic operand/result: a
// non-negative value representable in 32 bits.
func inDomain(v int64) bool { return v >= 0 && v <= math.MaxInt32 }

// Check evaluates a fully bound builtin: it reports whether the relation
// holds for the given operand values. vals must have b.Arity() entries.
func Check(b ast.Builtin, vals []storage.Value) bool {
	switch b {
	case ast.BAdd:
		return int64(vals[0])+int64(vals[1]) == int64(vals[2])
	case ast.BSub:
		return vals[0] >= vals[1] && int64(vals[0])-int64(vals[1]) == int64(vals[2])
	case ast.BMul:
		return int64(vals[0])*int64(vals[1]) == int64(vals[2])
	case ast.BDiv:
		return vals[1] != 0 && vals[0]/vals[1] == vals[2]
	case ast.BMod:
		return vals[1] != 0 && vals[0]%vals[1] == vals[2]
	case ast.BEq:
		return vals[0] == vals[1]
	case ast.BNe:
		return vals[0] != vals[1]
	case ast.BLt:
		return vals[0] < vals[1]
	case ast.BLe:
		return vals[0] <= vals[1]
	case ast.BGt:
		return vals[0] > vals[1]
	case ast.BGe:
		return vals[0] >= vals[1]
	}
	return false
}

// Solve evaluates a builtin with exactly one unbound operand position,
// returning the value that position must take for the relation to hold.
// ok is false when no such value exists in the domain (e.g. natural
// subtraction underflow, non-divisible product, division by zero).
//
// For comparison builtins only BEq supports solving (copying the bound side).
func Solve(b ast.Builtin, vals []storage.Value, unbound int) (out storage.Value, ok bool) {
	// Arithmetic over symbols is undefined.
	for i, v := range vals {
		if i != unbound && storage.IsSymbol(v) && b != ast.BEq && b != ast.BNe {
			return 0, false
		}
	}
	switch b {
	case ast.BAdd: // a + b = c
		switch unbound {
		case 2:
			r := int64(vals[0]) + int64(vals[1])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		case 0:
			r := int64(vals[2]) - int64(vals[1])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		case 1:
			r := int64(vals[2]) - int64(vals[0])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		}
	case ast.BSub: // a - b = c  (natural)
		switch unbound {
		case 2:
			r := int64(vals[0]) - int64(vals[1])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		case 0:
			r := int64(vals[2]) + int64(vals[1])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		case 1:
			r := int64(vals[0]) - int64(vals[2])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		}
	case ast.BMul: // a * b = c
		switch unbound {
		case 2:
			r := int64(vals[0]) * int64(vals[1])
			if !inDomain(r) {
				return 0, false
			}
			return storage.Value(r), true
		case 0:
			if vals[1] == 0 || vals[2]%vals[1] != 0 {
				return 0, false
			}
			return vals[2] / vals[1], true
		case 1:
			if vals[0] == 0 || vals[2]%vals[0] != 0 {
				return 0, false
			}
			return vals[2] / vals[0], true
		}
	case ast.BDiv: // a / b = c
		if unbound == 2 {
			if vals[1] == 0 {
				return 0, false
			}
			return vals[0] / vals[1], true
		}
	case ast.BMod: // a % b = c
		if unbound == 2 {
			if vals[1] == 0 {
				return 0, false
			}
			return vals[0] % vals[1], true
		}
	case ast.BEq:
		switch unbound {
		case 0:
			return vals[1], true
		case 1:
			return vals[0], true
		}
	}
	return 0, false
}
