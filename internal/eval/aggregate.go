package eval

import (
	"encoding/binary"

	"carac/internal/ast"
	"carac/internal/storage"
)

// Aggregator accumulates grouped aggregate values for one aggregation rule.
// The group key is the head tuple with the aggregate position zeroed; Emit
// materializes one tuple per group with the aggregate filled in.
type Aggregator struct {
	kind    ast.AggKind
	headLen int
	aggPos  int
	groups  map[string]*aggState
	order   []string // insertion order for deterministic emission
}

type aggState struct {
	key   []storage.Value
	count int64
	sum   int64
	min   storage.Value
	max   storage.Value
}

// NewAggregator returns an accumulator for kind over head tuples of length
// headLen whose aggregate output sits at aggPos.
func NewAggregator(kind ast.AggKind, headLen, aggPos int) *Aggregator {
	return &Aggregator{
		kind:    kind,
		headLen: headLen,
		aggPos:  aggPos,
		groups:  make(map[string]*aggState),
	}
}

// Add records one body match: head is the projected head tuple (the value at
// the aggregate position is ignored), v is the aggregated variable's value
// (ignored for count).
func (a *Aggregator) Add(head []storage.Value, v storage.Value) {
	keyBuf := make([]byte, 4*a.headLen)
	for i, hv := range head {
		if i == a.aggPos {
			hv = 0
		}
		binary.LittleEndian.PutUint32(keyBuf[4*i:], uint32(hv))
	}
	k := string(keyBuf)
	st, ok := a.groups[k]
	if !ok {
		key := make([]storage.Value, len(head))
		copy(key, head)
		key[a.aggPos] = 0
		st = &aggState{key: key, min: v, max: v}
		a.groups[k] = st
		a.order = append(a.order, k)
	}
	st.count++
	st.sum += int64(v)
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
}

// Emit calls sink once per group with the completed head tuple.
func (a *Aggregator) Emit(sink func(tuple []storage.Value)) {
	for _, k := range a.order {
		st := a.groups[k]
		out := make([]storage.Value, len(st.key))
		copy(out, st.key)
		var v int64
		switch a.kind {
		case ast.AggCount:
			v = st.count
		case ast.AggSum:
			v = st.sum
		case ast.AggMin:
			v = int64(st.min)
		case ast.AggMax:
			v = int64(st.max)
		}
		// Clamp into the storage domain; out-of-range aggregates saturate.
		if v > 1<<31-1 {
			v = 1<<31 - 1
		}
		if v < 0 {
			v = 0
		}
		out[a.aggPos] = storage.Value(v)
		sink(out)
	}
}

// Len returns the number of groups accumulated so far.
func (a *Aggregator) Len() int { return len(a.groups) }
