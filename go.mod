module carac

go 1.24
