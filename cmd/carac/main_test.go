package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tcProg = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
`

func TestRunWithFactsDir(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg)
	writeFile(t, dir, "edge.facts", "1\t2\n2\t3\n3\t4\n")

	if err := run([]string{"run", prog, "-facts", dir, "-stats=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllBackends(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\nedge(2,3).\n")
	for _, backend := range []string{"off", "irgen", "lambda", "bytecode", "quotes"} {
		if err := run([]string{"run", prog, "-backend", backend, "-stats=false"}); err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg)
	cases := [][]string{
		{},
		{"run"},
		{"run", filepath.Join(dir, "missing.dl")},
		{"run", prog, "-backend", "llvm"},
		{"run", prog, "-granularity", "molecule"},
		{"run", prog, "-aot", "everything"},
		{"run", prog, "-print", "nosuchrel"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunBadFactFile(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg)
	writeFile(t, dir, "edge.facts", "1\t2\t3\n") // wrong arity
	err := run([]string{"run", prog, "-facts", dir, "-stats=false"})
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("err = %v", err)
	}
	writeFile(t, dir, "edge.facts", "1\t2\n")
	writeFile(t, dir, "phantom.facts", "1\t2\n")
	if err := run([]string{"run", prog, "-facts", dir, "-stats=false"}); err == nil {
		t.Fatal("undeclared fact relation accepted")
	}
}

func TestRunSymbolFacts(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "inv.dl", `
.decl inverse(g:symbol, f:symbol)
.decl selfinv(g:symbol)
selfinv(g) :- inverse(g, g).
`)
	writeFile(t, dir, "inverse.facts", "neg\tneg\nserialize\tdeserialize\n")
	if err := run([]string{"run", prog, "-facts", dir, "-print", "selfinv", "-stats=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\n")
	if err := run([]string{"run", prog, "-explain", "-stats=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAOTAndNaive(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\n")
	for _, args := range [][]string{
		{"run", prog, "-aot", "rules", "-stats=false"},
		{"run", prog, "-aot", "facts", "-stats=false"},
		{"run", prog, "-naive", "-stats=false"},
		{"run", prog, "-backend", "quotes", "-async", "-snippet", "-granularity", "union", "-stats=false"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunSharedPlansRepeat(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\nedge(2,3).\nedge(3,4).\n")
	for _, args := range [][]string{
		{"run", prog, "-shared-plans", "-repeat", "3", "-stats=false"},
		{"run", prog, "-shared-plans", "-repeat", "2"},
		{"run", prog, "-shared-plans", "-repeat", "2", "-backend", "lambda"},
		{"run", prog, "-plancache", "-repeat", "2", "-stats=false"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"run", prog, "-repeat", "0"}); err == nil {
		t.Fatal("-repeat 0 accepted")
	}
}

// TestFlagValidation: count-like flags whose 0 default means "auto" must
// reject an explicit zero or negative setting instead of silently running
// with the default, for both subcommands.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\n")
	bad := [][]string{
		{"run", prog, "-repeat", "-2"},
		{"run", prog, "-workers", "0"},
		{"run", prog, "-workers", "-1"},
		{"run", prog, "-shards", "0"},
		{"run", prog, "-shards", "-4"},
		{"serve", prog, "-clients", "-1"},
		{"serve", prog, "-queries", "-3"},
		{"serve", prog, "-qps", "0"},
		{"serve", prog, "-qps", "-2.5"},
		{"serve", prog, "-workers", "0"},
		{"serve", prog, "-shards", "-1"},
	}
	for _, args := range bad {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v) succeeded, want rejection", args)
			continue
		}
		if !strings.Contains(err.Error(), "must be") {
			t.Errorf("run(%v): unexpected error %v", args, err)
		}
	}
	// The unset defaults stay legal: workers/shards 0 means GOMAXPROCS/off.
	for _, args := range [][]string{
		{"run", prog, "-stats=false"},
		{"serve", prog, "-clients", "1", "-queries", "1", "-stats=false"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestServeCommand(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg)
	writeFile(t, dir, "edge.facts", "1\t2\n2\t3\n3\t4\n4\t5\n")
	for _, args := range [][]string{
		{"serve", prog, "-facts", dir, "-clients", "3", "-queries", "2", "-stats=false"},
		{"serve", prog, "-facts", dir, "-clients", "2", "-queries", "2", "-backend", "lambda"},
		{"serve", prog, "-facts", dir, "-clients", "2", "-queries", "3", "-qps", "100", "-stats=false"},
		{"serve", prog, "-facts", dir, "-clients", "2", "-queries", "2", "-shards", "4", "-workers", "2", "-stats=false"},
		{"serve", prog, "-facts", dir, "-clients", "3", "-queries", "4", "-materialize", "-stats=false"},
		{"serve", prog, "-facts", dir, "-clients", "2", "-queries", "5", "-materialize", "-repeat", "0.5"},
		{"serve", prog, "-facts", dir, "-clients", "2", "-queries", "2", "-materialize", "-repeat", "0", "-backend", "lambda", "-stats=false"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestServeErrors(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "tc.dl", tcProg+"\nedge(1,2).\n")
	for _, args := range [][]string{
		{"serve"},
		{"serve", filepath.Join(dir, "missing.dl")},
		{"serve", prog, "-clients", "0"},
		{"serve", prog, "-queries", "0"},
		{"serve", prog, "-repeat", "1.5"},
		{"serve", prog, "-backend", "llvm"},
		{"uptime", prog},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
