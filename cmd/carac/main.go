// Command carac runs a Datalog program from a .dl source file (optionally
// with external fact files) under any of Carac's execution configurations:
//
//	carac run prog.dl [-facts dir] [-backend off|irgen|lambda|bytecode|quotes]
//	    [-granularity program|dowhile|unionall|union|spj] [-async] [-snippet]
//	    [-indexed] [-naive] [-aot none|rules|facts] [-print rel1,rel2] [-stats]
//	    [-plancache] [-adaptive] [-parallel] [-workers n] [-shards n]
//	    [-shared-plans] [-repeat n] [-histograms] [-steal-threshold r]
//
// or drives a concurrent serving load against it — one warm run, then
// -clients snapshot-isolated sessions each issuing -queries fixpoint
// queries (optionally paced to -qps per client) over the shared plan store
// and worker pool:
//
//	carac serve prog.dl [-facts dir] [-clients n] [-queries n] [-qps r]
//	    [-backend ...] [-granularity ...] [-workers n] [-shards n]
//	    [-adaptive-fanout] [-histograms] [-timeout d] [-stats]
//
// Fact files are TSV: one tuple per line, tab-separated, named <relation>.facts
// inside -facts dir; numeric columns are integers, everything else is interned
// as a symbol.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"carac/internal/core"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/optimizer"
	pcache "carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "carac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: carac <run|serve> <prog.dl> [flags]")
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "serve":
		return serveCmd(args[1:])
	default:
		return fmt.Errorf("usage: carac <run|serve> <prog.dl> [flags]")
	}
}

// requirePositive rejects any of the named flags that was explicitly set on
// the command line to a zero or negative value. These flags default to 0 (or
// 1) meaning "auto" — workers → GOMAXPROCS, shards → off, qps → unpaced — so
// only an explicit setting is checked: `-workers 0` silently aliasing the
// default while reading as "no workers" is exactly the scripted-driver
// mistake this guards against.
func requirePositive(fs *flag.FlagSet, names ...string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var err error
	fs.Visit(func(f *flag.Flag) {
		if err != nil || !want[f.Name] {
			return
		}
		g, ok := f.Value.(flag.Getter)
		if !ok {
			return
		}
		bad := false
		switch v := g.Get().(type) {
		case int:
			bad = v <= 0
		case float64:
			bad = v <= 0
		}
		if bad {
			err = fmt.Errorf("-%s must be positive, got %s", f.Name, f.Value.String())
		}
	})
	return err
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("carac run", flag.ContinueOnError)
	factsDir := fs.String("facts", "", "directory of <relation>.facts TSV files")
	backend := fs.String("backend", "off", "JIT backend: off|irgen|lambda|bytecode|quotes")
	granularity := fs.String("granularity", "spj", "compilation granularity: program|dowhile|unionall|union|spj")
	async := fs.Bool("async", false, "compile asynchronously")
	snippet := fs.Bool("snippet", false, "snippet compilation (quotes/lambda)")
	indexed := fs.Bool("indexed", true, "build join/filter indexes")
	naive := fs.Bool("naive", false, "naive (non-semi-naive) evaluation")
	aot := fs.String("aot", "none", "ahead-of-time sort: none|rules|facts")
	printRels := fs.String("print", "", "comma-separated relations to print")
	stats := fs.Bool("stats", true, "print execution statistics")
	plancache := fs.Bool("plancache", false, "cache access plans across subquery executions (drift-gated)")
	adaptive := fs.Bool("adaptive", false, "re-optimize join orders on cardinality drift (implies -plancache)")
	parallel := fs.Bool("parallel", false, "evaluate independent rules on a bounded worker pool")
	workers := fs.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "hash-shard each relation into this many buckets and split single rules across workers (implies -parallel)")
	adaptiveFanout := fs.Bool("adaptive-fanout", false, "re-decide the parallel fan-out each iteration from live delta statistics, with a sequential fast path for small-delta iterations (implies -shards 8 when -shards is unset)")
	fanoutThreshold := fs.Int("fanout-threshold", 0, "delta size below which an iteration runs sequentially under -adaptive-fanout, and the minimum buffered volume for a parallel bucketed merge when -shards > 1 (0 = default)")
	histograms := fs.Bool("histograms", false, "maintain per-column histograms on join columns and order atoms by estimated join-output size (histogram overlap) instead of cardinality alone")
	stealThreshold := fs.Float64("steal-threshold", 0, "skew ratio (hottest delta bucket / mean occupied bucket) at which a fanned-out iteration switches to work-stealing per-bucket claims; 0 disables, 3.0 recommended")
	sharedPlans := fs.Bool("shared-plans", false, "key plan and compiled-unit caches into the program-lifetime plan store so repeated runs start warm (implies -plancache)")
	cacheDir := fs.String("cache-dir", "", "persist plans, bytecode compiled units, and the statistics profile to this directory and reload them on the next start, so a restarted process skips cold planning/compilation (implies -shared-plans)")
	repeat := fs.Int("repeat", 1, "run the program this many times on one Program (pair with -shared-plans to observe warm-run behavior)")
	timeout := fs.Duration("timeout", 0, "abort after this duration")
	explain := fs.Bool("explain", false, "print the IROp plan (with optimizer weights) before running")

	p, err := loadProgram(fs, args, factsDir)
	if err != nil {
		return err
	}
	if err := requirePositive(fs, "repeat", "workers", "shards"); err != nil {
		return err
	}

	be, err := jit.ParseBackend(*backend)
	if err != nil {
		return err
	}
	gr, err := jit.ParseGranularity(*granularity)
	if err != nil {
		return err
	}
	var aotStage core.AOTStage
	switch *aot {
	case "none", "":
		aotStage = core.AOTNone
	case "rules":
		aotStage = core.AOTRulesOnly
	case "facts":
		aotStage = core.AOTFactsAndRules
	default:
		return fmt.Errorf("unknown -aot %q", *aot)
	}

	opts := core.Options{
		Indexed:         *indexed,
		Naive:           *naive,
		AOT:             aotStage,
		Timeout:         *timeout,
		PlanCache:       *plancache,
		AdaptivePlans:   *adaptive,
		SharedPlans:     *sharedPlans,
		ParallelUnions:  *parallel,
		Workers:         *workers,
		Shards:          *shards,
		AdaptiveFanout:  *adaptiveFanout,
		FanoutThreshold: *fanoutThreshold,
		Histograms:      *histograms,
		StealThreshold:  *stealThreshold,
		CacheDir:        *cacheDir,
		JIT: jit.Config{
			Backend:     be,
			Granularity: gr,
			Async:       *async,
			Snippet:     *snippet,
		},
	}
	if *explain {
		if err := explainPlan(p, *naive); err != nil {
			return err
		}
	}
	var res *core.Result
	var totalRecompiles int64
	for i := 0; i < *repeat; i++ {
		r, err := p.Run(opts)
		if err != nil {
			return err
		}
		res = r
		totalRecompiles += r.JIT.Compilations
		if *stats && *repeat > 1 {
			fmt.Fprintf(os.Stderr, "run %d/%d: time=%v plan-builds=%d plan-hits=%d cross-run-hits=%d unit-reuses=%d recompiles=%d\n",
				i+1, *repeat, r.Duration.Round(time.Microsecond), r.Interp.PlanBuilds,
				r.Plans.Hits, r.Plans.CrossRunHits+r.Units.CrossRunHits, r.Units.Hits, r.JIT.Compilations)
		}
	}

	if *printRels != "" {
		for _, name := range strings.Split(*printRels, ",") {
			name = strings.TrimSpace(name)
			pd, ok := p.Catalog().PredByName(name)
			if !ok {
				return fmt.Errorf("unknown relation %q", name)
			}
			rel := p.Relation(name, pd.Arity)
			rel.Each(func(t []storage.Value) bool {
				parts := make([]string, len(t))
				for i, v := range t {
					parts[i] = p.Format(v)
				}
				fmt.Println(name + "(" + strings.Join(parts, ", ") + ")")
				return true
			})
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "time: %v  facts: %d  iterations: %d  derivations: %d  subqueries: %d\n",
			res.Duration.Round(time.Microsecond), res.TotalFacts,
			res.Interp.Iterations, res.Interp.Derivations, res.Interp.SPJRuns)
		if *parallel || *shards > 1 || *adaptiveFanout {
			fmt.Fprintf(os.Stderr, "fanout: sequential-iterations=%d/%d merge-tasks=%d\n",
				res.Interp.SeqIters, res.Interp.Iterations, res.Interp.MergeTasks)
		}
		if *stealThreshold > 0 || *histograms {
			fmt.Fprintf(os.Stderr, "skew: skew-iterations=%d steals=%d estimated-rows=%d\n",
				res.Interp.SkewIters, res.Interp.Steals, res.Interp.EstimatedRows)
		}
		if be != jit.BackendOff {
			fmt.Fprintf(os.Stderr, "jit: compilations=%d compile-time=%v cache-hits=%d stale=%d reorders=%d switchovers=%d\n",
				res.JIT.Compilations, res.JIT.CompileTime.Round(time.Microsecond),
				res.JIT.CacheHits, res.JIT.StaleDrops, res.JIT.Reorders, res.JIT.Switchovers)
		}
		if *plancache || *adaptive || *sharedPlans || *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "plancache: hits=%d (fast=%d) cold=%d band=%d stale=%d reopts=%d hit-rate=%.1f%%\n",
				res.Plans.Hits, res.Plans.FastHits, res.Plans.ColdMisses, res.Plans.BandMisses,
				res.Plans.StaleDrops, res.Interp.Reopts, 100*res.Plans.HitRate())
			// Plan-store line: misses fold cold+band+stale; unit figures come
			// from the JIT's compiled-unit view of the same store. Under
			// -shared-plans the store outlives runs, so totals accumulate
			// across every -repeat iteration.
			pls, units := res.Plans, res.Units
			if *sharedPlans || *cacheDir != "" {
				store := p.PlanStore()
				pls = store.ClassStats(pcache.ClassPlans)
				units = store.ClassStats(pcache.ClassUnits)
			}
			fmt.Fprintf(os.Stderr, "plan-store: hits=%d (cross-run=%d) misses=%d widens=%d evictions=%d unit-reuses=%d (cross-run=%d) unit-recompiles=%d\n",
				pls.Hits, pls.CrossRunHits, pls.ColdMisses+pls.BandMisses+pls.StaleDrops,
				pls.Widens, pls.Evictions+units.Evictions, units.Hits, units.CrossRunHits, totalRecompiles)
			if ds, ok := p.DiskStats(); ok {
				fmt.Fprintf(os.Stderr, "disk-cache: hits=%d misses=%d invalidations=%d flushes=%d\n",
					ds.Hits, ds.Misses, ds.Invalidations, ds.Flushes)
			}
		}
	}
	return nil
}

// loadProgram extracts the .dl path from args, parses the remaining flags
// into fs (the -facts flag must already be registered there), and returns
// the loaded Program with its external facts inserted.
func loadProgram(fs *flag.FlagSet, args []string, factsDir *string) (*core.Program, error) {
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if file == "" {
		return nil, fmt.Errorf("usage: %s <prog.dl> [flags]", fs.Name())
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	p := core.NewProgram()
	if err := p.LoadSource(string(src)); err != nil {
		return nil, err
	}
	if *factsDir != "" {
		if err := loadFactsDir(p, *factsDir); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// serveCmd drives a concurrent serving load: one warm Run populates the
// program-lifetime plan store, Serve publishes the first epoch, and
// -clients sessions — each pinned to that epoch, all sharing the server's
// worker pool — issue -queries fixpoint queries concurrently, optionally
// paced to -qps queries per second per client.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("carac serve", flag.ContinueOnError)
	factsDir := fs.String("facts", "", "directory of <relation>.facts TSV files")
	backend := fs.String("backend", "off", "JIT backend: off|irgen|lambda|bytecode|quotes")
	granularity := fs.String("granularity", "spj", "compilation granularity: program|dowhile|unionall|union|spj")
	indexed := fs.Bool("indexed", true, "build join/filter indexes")
	workers := fs.Int("workers", 0, "worker-pool size shared by all sessions (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "hash-shard relations and split rules across workers")
	adaptiveFanout := fs.Bool("adaptive-fanout", false, "re-decide parallel fan-out per iteration from live delta statistics")
	histograms := fs.Bool("histograms", false, "histogram-driven atom ordering (frozen per epoch for sessions)")
	clients := fs.Int("clients", 4, "concurrent client sessions")
	queries := fs.Int("queries", 8, "queries per client")
	qps := fs.Float64("qps", 0, "per-client query rate (0 = maximum throughput)")
	materialize := fs.Bool("materialize", false, "materialize each epoch's fixpoint once; repeat queries answer by lookup")
	cacheDir := fs.String("cache-dir", "", "persistent plan/compiled-unit cache directory: loaded before the first epoch, flushed on every publish, so a restarted server starts disk-warm")
	repeat := fs.Float64("repeat", 1, "hot-query ratio per client in [0,1]: this fraction of queries repeat on the client's session, the rest open a fresh session each")
	timeout := fs.Duration("timeout", 0, "per-query timeout")
	statsFlag := fs.Bool("stats", true, "print serving statistics")

	p, err := loadProgram(fs, args, factsDir)
	if err != nil {
		return err
	}
	if *clients < 1 || *queries < 1 {
		return fmt.Errorf("-clients and -queries must be >= 1")
	}
	if err := requirePositive(fs, "clients", "queries", "qps", "workers", "shards"); err != nil {
		return err
	}
	// Serve's -repeat is a hot-query ratio, not a count: 0 (all fresh
	// sessions) is meaningful, above 1 is not.
	if *repeat < 0 || *repeat > 1 {
		return fmt.Errorf("-repeat must be in [0,1]")
	}
	be, err := jit.ParseBackend(*backend)
	if err != nil {
		return err
	}
	gr, err := jit.ParseGranularity(*granularity)
	if err != nil {
		return err
	}
	opts := core.Options{
		Indexed:        *indexed,
		SharedPlans:    true,
		Materialize:    *materialize,
		CacheDir:       *cacheDir,
		Workers:        *workers,
		Shards:         *shards,
		AdaptiveFanout: *adaptiveFanout,
		Histograms:     *histograms,
		Timeout:        *timeout,
		JIT:            jit.Config{Backend: be, Granularity: gr},
	}
	// Warm run: serving is the steady state the plan store exists for.
	if _, err := p.Run(opts); err != nil {
		return err
	}
	srv, err := p.Serve(opts)
	if err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		facts    = -1
	)
	interval := time.Duration(0)
	if *qps > 0 {
		interval = time.Duration(float64(time.Second) / *qps)
	}
	hot := int(*repeat*10 + 0.5)
	t0 := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer sess.Close()
			next := time.Now()
			for q := 0; q < *queries; q++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				// Hot queries repeat on the persistent session; the rest
				// open a fresh session each, modeling distinct arrivals.
				qs := sess
				if q%10 >= hot {
					fresh, err := srv.Session()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					qs = fresh
				}
				res, err := qs.Query()
				if qs != sess {
					qs.Close()
				}
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				case facts == -1:
					facts = res.TotalFacts
				case facts != res.TotalFacts:
					if firstErr == nil {
						firstErr = fmt.Errorf("sessions diverged: %d facts vs %d", res.TotalFacts, facts)
					}
					mu.Unlock()
					return
				}
				done++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	dt := time.Since(t0)
	if firstErr != nil {
		return firstErr
	}
	if *statsFlag {
		qpsOut := 0.0
		if dt > 0 {
			qpsOut = float64(done) / dt.Seconds()
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "serve: clients=%d queries=%d duration=%v qps=%.1f facts-per-query=%d cross-run-hits=%d memo-hits=%d materialized-epochs=%d\n",
			*clients, done, dt.Round(time.Microsecond), qpsOut, facts,
			srv.PlanStats().CrossRunHits+srv.UnitStats().CrossRunHits,
			st.MemoHits, st.MaterializedEpochs)
		if ds, ok := srv.DiskStats(); ok {
			fmt.Fprintf(os.Stderr, "disk-cache: hits=%d misses=%d invalidations=%d flushes=%d\n",
				ds.Hits, ds.Misses, ds.Invalidations, ds.Flushes)
		}
	}
	return nil
}

// explainPlan prints the lowered IROp tree and, for every subquery, the
// optimizer's current weights under the loaded facts.
func explainPlan(p *core.Program, naive bool) error {
	var root *ir.ProgramOp
	var err error
	if naive {
		root, err = ir.LowerNaive(p.AST())
	} else {
		root, err = ir.Lower(p.AST())
	}
	if err != nil {
		return err
	}
	cat := p.Catalog()
	fmt.Println("-- plan --")
	fmt.Print(ir.Dump(root, cat))
	fmt.Println("-- subquery weights (live cardinalities) --")
	live := stats.Catalog{Cat: cat}
	opts := optimizer.DefaultOptions()
	ir.Walk(root, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			fmt.Printf("rule %d: %s\n", spj.RuleIdx, optimizer.Explain(spj, cat, live, opts))
		}
	})
	fmt.Println("-- end plan --")
	return nil
}

// loadFactsDir reads every <relation>.facts TSV file in dir.
func loadFactsDir(p *core.Program, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".facts") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".facts")
		pd, ok := p.Catalog().PredByName(name)
		if !ok {
			return fmt.Errorf("fact file %s has no declared relation %q", e.Name(), name)
		}
		rel := p.Relation(name, pd.Arity)
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			cols := strings.Split(line, "\t")
			if len(cols) != pd.Arity {
				f.Close()
				return fmt.Errorf("%s:%d: %d columns for %s/%d", e.Name(), lineNo, len(cols), name, pd.Arity)
			}
			tuple := make([]storage.Value, len(cols))
			for i, c := range cols {
				if n, err := strconv.ParseInt(c, 10, 32); err == nil && n >= 0 {
					tuple[i] = storage.Value(n)
				} else {
					tuple[i] = p.Catalog().Symbols.Intern(c)
				}
			}
			rel.FactTuple(tuple)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return nil
}
