// Command benchjson converts `go test -bench` output on stdin into a JSON
// artifact mapping benchmark name to its reported metrics — the format the
// CI perf-trajectory steps archive (BENCH_merge.json, BENCH_plancache.json),
// so successive PRs can diff ns/op and allocs/op mechanically instead of
// eyeballing logs.
//
//	go test -bench BenchmarkShardedSpeedup -benchtime 1x -benchmem . | benchjson > BENCH_merge.json
//
// Any positional arguments are benchmark name prefixes: only benchmarks
// matching at least one prefix land in the artifact, so one `go test -bench`
// invocation can feed several differently scoped artifacts:
//
//	benchjson BenchmarkPlanCache BenchmarkWarmRerun < bench.txt > BENCH_plancache.json
//
// Standard metric pairs (ns/op, B/op, allocs/op) and any custom
// b.ReportMetric units are all captured; the GOMAXPROCS suffix ("-8") is
// stripped from names so artifacts diff cleanly across machines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the iteration count and every reported
// metric keyed by its unit.
type Result struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output, returning benchmark results keyed by
// name (GOMAXPROCS suffix stripped) in input order, plus the names in that
// order for deterministic serialization.
func Parse(r io.Reader) (map[string]Result, []string, error) {
	out := make(map[string]Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := stripProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... --- FAIL" line
		}
		res := Result{Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = res
	}
	return out, order, sc.Err()
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Filter keeps only the benchmarks whose name matches at least one of the
// given prefixes, preserving input order. No prefixes keeps everything.
func Filter(results map[string]Result, order []string, prefixes []string) (map[string]Result, []string) {
	if len(prefixes) == 0 {
		return results, order
	}
	kept := make(map[string]Result)
	var keptOrder []string
	for _, name := range order {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				kept[name] = results[name]
				keptOrder = append(keptOrder, name)
				break
			}
		}
	}
	return kept, keptOrder
}

func main() {
	results, order, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	results, order = Filter(results, order, os.Args[1:])
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin matched", os.Args[1:])
		os.Exit(1)
	}
	// Ordered object output: marshal entry by entry so the artifact diffs
	// stably run to run.
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range order {
		enc, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		key, _ := json.Marshal(name)
		fmt.Fprintf(&b, "  %s: %s", key, enc)
		if i < len(order)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	os.Stdout.WriteString(b.String())
}
