// Command benchjson converts `go test -bench` output on stdin into a JSON
// artifact mapping benchmark name to its reported metrics — the format the
// CI perf-trajectory step archives (BENCH_merge.json), so successive PRs
// can diff ns/op and allocs/op mechanically instead of eyeballing logs.
//
//	go test -bench BenchmarkShardedSpeedup -benchtime 1x -benchmem . | benchjson > BENCH_merge.json
//
// Standard metric pairs (ns/op, B/op, allocs/op) and any custom
// b.ReportMetric units are all captured; the GOMAXPROCS suffix ("-8") is
// stripped from names so artifacts diff cleanly across machines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the iteration count and every reported
// metric keyed by its unit.
type Result struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output, returning benchmark results keyed by
// name (GOMAXPROCS suffix stripped) in input order, plus the names in that
// order for deterministic serialization.
func Parse(r io.Reader) (map[string]Result, []string, error) {
	out := make(map[string]Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := stripProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... --- FAIL" line
		}
		res := Result{Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = res
	}
	return out, order, sc.Err()
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	results, order, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// Ordered object output: marshal entry by entry so the artifact diffs
	// stably run to run.
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range order {
		enc, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		key, _ := json.Marshal(name)
		fmt.Fprintf(&b, "  %s: %s", key, enc)
		if i < len(order)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	os.Stdout.WriteString(b.String())
}
