package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: carac
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedSpeedup/Sequential-8         	       1	 372845238 ns/op	68203752 B/op	  629843 allocs/op
BenchmarkShardedSpeedup/Adaptive8/W4         	       2	 155329337 ns/op	41959192 B/op	  457905 allocs/op
BenchmarkPlanCache/CSPA/PlanCache-8          	       3	  12345678 ns/op	        97.5 hit%	 1234 B/op	   56 allocs/op
PASS
ok  	carac	5.012s
`

func TestParse(t *testing.T) {
	res, order, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || len(order) != 3 {
		t.Fatalf("parsed %d results (%d ordered), want 3", len(res), len(order))
	}
	seq := res["BenchmarkShardedSpeedup/Sequential"]
	if seq.Iterations != 1 || seq.Metrics["ns/op"] != 372845238 || seq.Metrics["allocs/op"] != 629843 {
		t.Fatalf("sequential entry = %+v", seq)
	}
	// The GOMAXPROCS suffix is stripped only when numeric: W4 survives.
	if _, ok := res["BenchmarkShardedSpeedup/Adaptive8/W4"]; !ok {
		t.Fatalf("adaptive entry missing; order = %v", order)
	}
	pc := res["BenchmarkPlanCache/CSPA/PlanCache"]
	if pc.Metrics["hit%"] != 97.5 || pc.Metrics["B/op"] != 1234 {
		t.Fatalf("custom metrics not captured: %+v", pc.Metrics)
	}
	if order[0] != "BenchmarkShardedSpeedup/Sequential" {
		t.Fatalf("order[0] = %q", order[0])
	}
}

func TestParseRoundTripsAsJSON(t *testing.T) {
	res, _, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["BenchmarkShardedSpeedup/Sequential"].Metrics["ns/op"] != 372845238 {
		t.Fatal("round trip lost data")
	}
}

func TestFilterByPrefixes(t *testing.T) {
	res, order, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Single prefix narrows to its family.
	pc, pcOrder := Filter(res, order, []string{"BenchmarkPlanCache"})
	if len(pc) != 1 || pcOrder[0] != "BenchmarkPlanCache/CSPA/PlanCache" {
		t.Fatalf("plan-cache filter = %v", pcOrder)
	}
	// Multiple prefixes in one invocation union their matches, input order kept.
	both, bothOrder := Filter(res, order, []string{"BenchmarkPlanCache", "BenchmarkShardedSpeedup/Sequential"})
	if len(both) != 2 {
		t.Fatalf("multi-prefix filter kept %d, want 2 (%v)", len(both), bothOrder)
	}
	if bothOrder[0] != "BenchmarkShardedSpeedup/Sequential" || bothOrder[1] != "BenchmarkPlanCache/CSPA/PlanCache" {
		t.Fatalf("multi-prefix order = %v", bothOrder)
	}
	// No prefixes keeps everything.
	all, allOrder := Filter(res, order, nil)
	if len(all) != 3 || len(allOrder) != 3 {
		t.Fatalf("nil filter dropped entries: %v", allOrder)
	}
	// A non-matching prefix empties the set (main exits with an error).
	none, _ := Filter(res, order, []string{"BenchmarkNoSuch"})
	if len(none) != 0 {
		t.Fatalf("non-matching prefix kept %d entries", len(none))
	}
}
