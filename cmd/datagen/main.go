// Command datagen emits the synthetic benchmark datasets as <relation>.facts
// TSV files consumable by `carac run -facts`:
//
//	datagen cspa  -n 20000 -seed 42 -out dir   # Assign, Derefr
//	datagen csda  -n 50000 -seed 42 -out dir   # NullEdge, FlowEdge
//	datagen slist -scale 4 -seed 42 -out dir   # alloc, move, load, store, call, inverse
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"carac/internal/datagen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: datagen cspa|csda|slist [flags]")
	}
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	n := fs.Int("n", 20000, "approximate fact count (cspa/csda)")
	scale := fs.Int("scale", 1, "library scale multiplier (slist)")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", ".", "output directory")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	switch args[0] {
	case "cspa":
		f := datagen.CSPAGraph(*n, *seed)
		if err := writeEdges(*out, "Assign", f.Assign); err != nil {
			return err
		}
		return writeEdges(*out, "Derefr", f.Derefr)
	case "csda":
		f := datagen.CSDAGraph(*n, *seed)
		if err := writeEdges(*out, "NullEdge", f.NullEdge); err != nil {
			return err
		}
		return writeEdges(*out, "FlowEdge", f.FlowEdge)
	case "slist":
		f := datagen.SListLib(*scale, *seed)
		for name, edges := range map[string][]datagen.Edge{
			"alloc": f.Alloc, "move": f.Move, "load": f.Load, "store": f.Store,
		} {
			if err := writeEdges(*out, name, edges); err != nil {
				return err
			}
		}
		if err := writeLines(*out, "call", func(w *bufio.Writer) {
			for _, c := range f.Call {
				fmt.Fprintf(w, "%d\t%s\t%d\n", c.Ret, c.Fn, c.Arg)
			}
		}); err != nil {
			return err
		}
		return writeLines(*out, "inverse", func(w *bufio.Writer) {
			for _, iv := range f.Inverse {
				fmt.Fprintf(w, "%s\t%s\n", iv[0], iv[1])
			}
		})
	}
	return fmt.Errorf("unknown dataset %q (want cspa|csda|slist)", args[0])
}

func writeEdges(dir, name string, edges []datagen.Edge) error {
	return writeLines(dir, name, func(w *bufio.Writer) {
		for _, e := range edges {
			fmt.Fprintf(w, "%d\t%d\n", e.Src, e.Dst)
		}
	})
}

func writeLines(dir, name string, emit func(w *bufio.Writer)) error {
	f, err := os.Create(filepath.Join(dir, name+".facts"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	emit(w)
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
