package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDatagenCSPA(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"cspa", "-n", "500", "-seed", "7", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Assign.facts", "Derefr.facts"} {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 10 {
			t.Fatalf("%s has only %d lines", f, len(lines))
		}
		if !strings.Contains(lines[0], "\t") {
			t.Fatalf("%s is not TSV: %q", f, lines[0])
		}
	}
}

func TestDatagenCSDAAndSlist(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"csda", "-n", "500", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"slist", "-scale", "2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	inv, err := os.ReadFile(filepath.Join(dir, "inverse.facts"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(inv), "deserialize\tserialize") {
		t.Fatalf("inverse.facts content: %q", inv)
	}
	call, err := os.ReadFile(filepath.Join(dir, "call.facts"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(call), "serialize") {
		t.Fatalf("call.facts content: %q", call)
	}
}

func TestDatagenErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no dataset accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatagenDeterministic(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	for _, dir := range []string{d1, d2} {
		if err := run([]string{"cspa", "-n", "300", "-seed", "11", "-out", dir}); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := os.ReadFile(filepath.Join(d1, "Assign.facts"))
	b, _ := os.ReadFile(filepath.Join(d2, "Assign.facts"))
	if string(a) != string(b) {
		t.Fatal("same seed produced different datasets")
	}
}
