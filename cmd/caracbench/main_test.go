package main

import "testing"

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{}); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := run([]string{"fig10", "-scale", "galactic"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestFig10SmallScaleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	if err := run([]string{"fig10", "-scale", "small", "-reps", "1", "-warmups", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationSmallScaleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	if err := run([]string{"ablation", "-scale", "small", "-reps", "1", "-warmups", "0", "-timeout", "60s"}); err != nil {
		t.Fatal(err)
	}
}
