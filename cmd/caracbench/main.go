// Command caracbench regenerates every table and figure of the paper's
// evaluation section (§VI) on the synthetic datasets:
//
//	caracbench table1            # Table I : interpreted execution times
//	caracbench table2            # Table II: DLX / Soufflé / Carac comparison
//	caracbench fig5              # Fig 5   : code-generation time per granularity
//	caracbench fig6              # Fig 6   : macro speedups over unoptimized
//	caracbench fig7              # Fig 7   : micro speedups over unoptimized
//	caracbench fig8              # Fig 8   : macro speedups over hand-optimized
//	caracbench fig9              # Fig 9   : micro speedups over hand-optimized
//	caracbench fig10             # Fig 10  : AOT (macro staging) vs online
//	caracbench ablation          # design-choice sweeps (DESIGN.md)
//	caracbench all               # everything above
//
// Shared flags: -scale small|medium|full, -reps N, -warmups N, -timeout D,
// -cxx D (simulated external compile latency for the Soufflé baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"carac/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "caracbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("caracbench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "medium", "dataset scale: small|medium|full")
	reps := fs.Int("reps", 3, "measured repetitions per cell (median reported)")
	warmups := fs.Int("warmups", 1, "unmeasured warmup runs per cell")
	timeout := fs.Duration("timeout", 120*time.Second, "per-run timeout (timed-out cells report DNF)")
	cxx := fs.Duration("cxx", 0, "simulated external compile latency for Soufflé baseline modes (0 = default)")
	verbose := fs.Bool("v", false, "print progress to stderr")

	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing experiment (table1|table2|fig5|fig6|fig7|fig8|fig9|fig10|ablation|all)")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	suite := bench.NewSuite(scale, bench.Options{
		Warmups: *warmups,
		Reps:    *reps,
		Timeout: *timeout,
	})
	if *verbose {
		suite.Verbose = os.Stderr
	}

	experiments := map[string]func() *bench.Table{
		"table1":   suite.Table1,
		"table2":   func() *bench.Table { return suite.Table2(*cxx) },
		"fig5":     suite.Fig5,
		"fig6":     suite.Fig6,
		"fig7":     suite.Fig7,
		"fig8":     suite.Fig8,
		"fig9":     suite.Fig9,
		"fig10":    suite.Fig10,
		"ablation": suite.Ablation,
	}
	titles := map[string]string{
		"table1":   "Table I — average execution time (s) of interpreted Carac queries",
		"table2":   "Table II — average execution time (s) of DLX, Soufflé, and Carac",
		"fig5":     "Figure 5 — execution time of code generation",
		"fig6":     "Figure 6 — macrobenchmarks compared to unoptimized (speedup)",
		"fig7":     "Figure 7 — microbenchmarks compared to unoptimized (speedup)",
		"fig8":     "Figure 8 — macrobenchmarks compared to hand-optimized (speedup)",
		"fig9":     "Figure 9 — microbenchmarks compared to hand-optimized (speedup)",
		"fig10":    "Figure 10 — ahead-of-time and online compilation (speedup over unoptimized)",
		"ablation": "Ablations — ordering algorithm, freshness threshold, granularity ladder",
	}

	order := []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "ablation"}
	runOne := func(name string) error {
		f, ok := experiments[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Printf("## %s\n", titles[name])
		fmt.Printf("   (scale=%s reps=%d warmups=%d timeout=%v)\n\n", *scaleFlag, *reps, *warmups, *timeout)
		f().Write(os.Stdout)
		fmt.Println()
		return nil
	}
	if cmd == "all" {
		for _, name := range order {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(cmd)
}
