// Package carac is a from-scratch Go reproduction of "Adaptive Recursive
// Query Optimization" (Herlihy, Martres, Ailamaki, Odersky — ICDE 2024): the
// Carac Datalog engine with Adaptive Metaprogramming, i.e. runtime join-order
// optimization and repeated re-optimization of recursive queries through
// staged code generation.
//
// The engine lives under internal/ (see DESIGN.md for the module map); the
// public entry points are:
//
//   - internal/core — the embedded Datalog DSL and execution engine;
//   - cmd/carac — run .dl programs from the command line;
//   - cmd/caracbench — regenerate every table and figure of the paper;
//   - cmd/datagen — emit the synthetic benchmark datasets;
//   - bench_test.go — testing.B benchmarks, one per table/figure.
//
// # Statistics, plan cache, and the parallel executor
//
// Three subsystems extend the paper's design toward production scale:
//
//   - internal/stats is the unified statistics subsystem: live
//     cardinalities, per-column distinct counts, per-column value-distribution
//     histograms, and monotone drift counters are maintained incrementally
//     inside the internal/storage mutation paths (insert, delta swap,
//     truncate) and read in O(1) by the optimizer, the JIT freshness test,
//     and the plan cache — never re-derived ad hoc. Histograms
//     (core.Options.Histograms) are fixed-width hash histograms on the
//     planned join columns, registered like indexes
//     (storage.Relation.BuildHistogram) and carried through every shard
//     layout (per-bucket counts under the physical store,
//     stats.Catalog.ShardHistogram); the optimizer's atom ordering uses the
//     measured overlap of two join columns' histograms in place of the
//     constant join-key selectivity (optimizer.Options.UseHistograms), and
//     the resulting join-output estimate is recorded on each built plan
//     (interp.Plan.EstRows, totalled in Stats.EstimatedRows) so rebinds and
//     cached reuse keep the estimate that justified the order.
//
//   - internal/plancache generalizes the JIT's one-off freshness test into
//     a uniform drift-gated re-optimization policy. Interpreter access
//     plans and JIT compilation units are cached keyed by (structural
//     fingerprint, cardinality band) and served while observed cardinality
//     drift stays under a configurable threshold; a drift-driven miss
//     re-optimizes the join order with live statistics before re-planning.
//     The seed interpreter's per-execution planning becomes a cache lookup
//     (core.Options.PlanCache / AdaptivePlans).
//
//   - The semi-naive fixpoint driver evaluates the independent rules of
//     each iteration concurrently on a bounded, GOMAXPROCS-aware worker
//     pool (core.Options.ParallelUnions / Workers): workers share the
//     iteration-frozen catalog read-only, sink derivations into private
//     delta buffers, and merge them into the real delta relations at the
//     iteration barrier. ParallelUnions=false is the sequential fallback.
//
// # The sharded catalog
//
// Rule-granular parallelism is bounded by rule count: one huge recursive
// rule (the transitive-closure shape dominating the paper's CSPA workloads)
// serializes every iteration. core.Options.Shards lifts that bound to data
// size:
//
//   - internal/storage hash-partitions every relation into Shards buckets
//     keyed by the predicate's planned join column (storage.ShardOf,
//     Relation.SetShardKey). Buckets are row-id views maintained
//     incrementally beside the hash indexes — registering them changes
//     neither relation content nor the mutation counters, so the drift
//     totals the plan cache's freshness policy compares are identical with
//     and without sharding (per-shard counters refine the predicate counter;
//     a regression test pins the totals).
//
//   - internal/interp fans each rule of a parallel iteration out as one
//     task per delta bucket: a task's plan copy restricts the subquery's
//     delta read to its bucket (exact bucket lists on the scan fast path,
//     per-row hash otherwise), tasks with empty buckets are skipped via the
//     O(1) per-shard cardinality statistic, and the per-worker delta
//     buffers merge at the same iteration barrier as before. The union of
//     the buckets is exactly the delta (FuzzShardRouting), so the fan-out
//     derives the same fixpoint — a differential harness in internal/core
//     checks every engine configuration against the sequential baseline.
//
//   - internal/plancache segments the cache into LockShards independently
//     locked shards keyed by the cache-key hash, so pool workers no longer
//     funnel their plan lookups through a single mutex. Keys that band-hop
//     repeatedly (cardinality climbing every early iteration, the CSPA
//     shape) get per-key band hysteresis: after HysteresisHops consecutive
//     hops the key's band quantization widens a step, so one plan rides the
//     climb instead of re-planning per band.
//
// # The sharded delta merge and adaptive fan-out
//
// PR 2's fan-out still funneled every iteration through a sequential merge
// barrier — worker delta buffers folded into DeltaNew one row at a time —
// which bounds output-heavy fixpoints by Amdahl's law, and its static
// fan-out taxed the small-delta tail iterations every recursive query ends
// in. Two layers remove both costs:
//
//   - internal/storage gains a physically sharded backing store
//     (storage.Relation.SetShardKeyPhysical, behind the same SetShardKey
//     partitioning): each delta bucket is an independent sub-relation with
//     its own arena slab, dedup set, and hash indexes, so concurrent
//     inserts into distinct buckets share no state (Relation.ShardInsert),
//     while Derived splits its dedup set per bucket
//     (SetShardKeySplit) so the workers' frozen set-difference probes are
//     bucket-local. Mutation counters are accounted so drift totals are
//     byte-identical to the flat layout for any operation sequence — mode
//     transitions preserve the totals exactly (the shard-drift regression
//     test pins all three layouts to one number).
//
//   - internal/interp rewrites the merge barrier: when sinks carry the
//     physical store, the fold fans out as one task per (predicate, bucket)
//     over the worker pool — task (p, b) drains bucket b of every worker's
//     buffer (partitioned with the identical key) into DeltaNew's bucket b,
//     with derivation counting in per-task counters summed at the join.
//     The fixpoint driver re-decides the fan-out every iteration from
//     stats.Catalog.ShardCard (core.Options.AdaptiveFanout): iterations
//     under FanoutThreshold total delta run on a zero-overhead sequential
//     path (no tasks, no buffers, no merge), and larger ones size the task
//     count to delta volume vs. worker count, handing each task a
//     contiguous bucket span. Worker buffers recycle through a per-Interp
//     free list with capacity retained (storage.Relation.ClearRetain), so
//     steady-state iterations allocate nothing.
//
//   - Skew-aware work stealing (core.Options.StealThreshold): contiguous
//     bucket spans assume the delta spreads evenly, but hub-dominated graphs
//     concentrate it in a few hash buckets, so the span holding the hot
//     bucket straggles and the iteration serializes behind one task. With
//     maxc the hottest bucket's delta count and mean the average over
//     occupied buckets, an iteration with maxc/mean >= StealThreshold
//     switches to per-bucket claims: each rule gets one shared atomic claim
//     table, min(workers, occupied) participation tasks race CAS-claims over
//     single buckets, and each claimed bucket runs as a span-1 restriction
//     through the same interpreted or compiled ShardUnit path a static span
//     uses. A bucket-to-worker affinity table (remembered from the previous
//     iteration's claims) biases each worker to re-claim its own buckets
//     first, so hot-bucket state stays on one worker; only claims taken
//     beyond the remembered assignment count as Stats.Steals, and skewed
//     iterations count as Stats.SkewIters. The static fan-out also clamps
//     its task count to the occupied bucket count, so mostly-empty deltas no
//     longer pay dispatch for empty spans. engines.RunCaracSkew and
//     BenchmarkSkewedSpeedup measure the configuration end to end over the
//     hub-and-spoke workloads.SkewedGraph.
//
// # The shard-native JIT
//
// The physical store above originally served pure interpretation only:
// attaching a jit.Controller silently fell back to the row-id view
// partition and a sequential loop, because compiled units addressed
// relations by global row id. The compiled backends now speak the
// bucket-local read surface, so sharding and compilation compose:
//
//   - every backend's generated code iterates physically sharded relations
//     through their PhysSubs sub-relations — per-bucket arenas and hash
//     indexes, with a probe on the shard key column routed to exactly one
//     bucket (lambda combinators, the bytecode VM's segment iterators, and
//     the quotes-staged probes all carry the same routing);
//
//   - the parallel driver's bucket-span tasks execute span-parameterized
//     compiled units (interp.ShardUnit, resolved per rule per iteration via
//     interp.ShardCompiler): entry points take the same contiguous
//     [shard, shard+span) restriction chooseFanout hands interpreted tasks,
//     thread all mutable state through per-invocation frames so distinct
//     workers run one unit concurrently, and write derivations into the
//     worker's private bucket-partitioned buffers, which the merge barrier
//     drains into DeltaNew as one race-free ShardInsert task per bucket —
//     exactly the parallel merge interpretation uses;
//
//   - task units live in the Program-lifetime store under rule-subtree
//     fingerprints tagged with the shard layout: warm reruns at one layout
//     recompile nothing, a re-partitioned run resolves to fresh keys (never
//     a unit whose spans were sized for another partition), and the unit
//     stays valid across ClearRetain / SwapClear / mode transitions because
//     it resolves relations and layout at invocation time.
//
// Under core.Options.Shards with a JIT backend the engine therefore keeps
// the physical delta store, the bucketed merge (Stats.MergeTasks), and the
// adaptive fan-out — benchmarked end to end by BenchmarkShardedSpeedup's
// *JIT entries and engines.RunCaracAdaptiveJIT in Table II.
//
// # The program-lifetime plan store
//
// The caches above were originally per-Run, so every execution — and every
// incremental fact batch, which triggers a fresh Run — paid the full
// cold-start re-planning tax the drift gate exists to avoid, and the JIT
// kept compiled units in its own per-op map with a duplicate freshness
// mechanism. One Program-owned store now backs both:
//
//   - internal/plancache owns a Store: one shard-locked key space with LRU
//     bounding (plancache.DefaultStoreLimit, approximate per-lock-shard
//     eviction) accessed through typed Cache views in separate key classes
//     — the interpreter's plan view and the JIT's compiled-unit view. Keys
//     are canonical structural fingerprints rather than rule or op
//     identity: plan keys (plancache.KeyFor) are invariant under predicate
//     renaming and variable naming, so N structurally identical rules (the
//     CSPA shape) share one entry, with internal/interp rebinding a shared
//     plan's concrete predicates to the requesting subquery on each hit;
//     unit keys (plancache.KeyForOp) fingerprint the IR subtree with
//     concrete predicates, stable across re-lowerings, so a later Run
//     resolves to the units an earlier Run compiled instead of recompiling,
//     and band return reuses old units (the unit view's cross-band lookup
//     serves any policy-fresh band). The JIT's private freshness test is
//     gone — both views gate on the one shared Policy.
//
//   - core.Options.SharedPlans keys a Run's caches into the store hanging
//     off the Program (Program.PlanStore): repeated runs and incremental
//     batches start warm, drift counters (storage-resident and monotone)
//     carry across runs by construction, and per-Run store generations make
//     reuse observable — Result.Plans/Units report CrossRunHits, the carac
//     CLI prints a plan-store line under -stats (with -repeat N for warm
//     runs from the command line), and engines.RunCaracWarm measures the
//     warm steady state in Table II.
//
// # Serving
//
// Everything above evaluates one Run at a time; core.Program.Serve turns a
// Program into a single-writer, many-reader query server on the same
// engine paths:
//
//   - An Epoch is an immutable snapshot published at a storage boundary:
//     pinned zero-copy views of every predicate's ground facts
//     (storage.Relation.PinRows — destructive rewrites detach the pinned
//     arena copy-on-flip, so appends stay cheap and epochs never copy
//     eagerly), a deep statistics snapshot taken before the baseline rewind
//     (stats.CaptureSnapshot, so a session's optimizer sees
//     boundary-consistent cardinalities and histograms, never a half-rebuilt
//     live histogram), and the plan-store generation for that boundary.
//
//   - A Session (core.Server.Session) pins the current epoch and evaluates
//     fixpoint queries against a private catalog seeded from it, through a
//     session-lived execution engine — the same interpreter, plan cache, and
//     JIT controller a Run uses. Sessions share the Program's plan store
//     (plans and compiled units are catalog-independent by the structural
//     keying above, so cross-session reuse is sound and shows up as
//     CrossRunHits) and draw intra-query parallelism from the server's
//     bounded worker pool: an idle server grants a session its full
//     fan-out, a loaded one degrades sessions toward one worker each.
//
//   - Writes stay single-writer: Server.Ingest batches fact mutations on
//     the live catalog, and Server.Publish flips the next epoch atomically
//     (rewind to ground baseline, advance the catalog epoch, bump the store
//     generation once per boundary — never per session query). Sessions
//     opened before a publish keep answering from their pinned epoch;
//     sessions opened after see the new facts. Run remains available on a
//     serving Program and is itself guarded by an internal mutex (see
//     TestConcurrentRunGuard for the race it closes).
//
// Compiled-unit re-entrancy is part of this contract: cached units are
// shared through the store, so two sessions may execute one unit
// concurrently — every backend therefore threads its mutable scratch
// through per-invocation pooled state (lambda chain instances, the bytecode
// VM's runState, quotes frames) rather than compile-time buffers. The
// serving load path is driven by engines.RunCaracServe, the carac serve
// subcommand (N clients x QPS), and BenchmarkServeThroughput (the
// BENCH_serve.json CI artifact); the concurrent-session differential matrix
// in internal/core checks every backend against the sequential oracle under
// the race detector.
//
// Materialized epochs (core.Options.Materialize) extend the epoch protocol
// from ground facts to derived state, so repeat queries become lookups:
//
//   - What is pinned: the first query on an epoch runs the fixpoint once —
//     single-flight across all sessions, so N concurrent identical queries
//     compute exactly one derivation while the rest block and adopt — and
//     pins the post-fixpoint Derived rows of every predicate into the epoch
//     (the same PinRows/copy-on-flip machinery as ground facts; physical
//     catalogs pin per-bucket arenas zero-copy), together with a
//     post-fixpoint statistics snapshot stamped with the epoch generation.
//     The result is also memoized in the plan store's memo class under the
//     query's structural fingerprint qualified by the epoch generation
//     (plancache.KeyAt), and Server.Stats counts MemoHits,
//     MaterializedEpochs, WarmStarts, and Derivations.
//
//   - When invalidation happens: at the epoch flip, structurally. Ingest
//     alone changes nothing visible; Publish advances the generation, so the
//     next epoch's first query misses the memo (its key embeds the new
//     generation) and recomputes. Sessions pinned to an older epoch keep
//     answering from that epoch's materialization forever — snapshot
//     isolation extends to derived state. Sessions opened on an already
//     materialized epoch are seeded with the pinned fixpoint directly and
//     never derive.
//
//   - Warm-start semantics: for monotone programs (no negation, no
//     aggregates — non-monotone programs and Naive mode fall back to cold
//     derivation), the next epoch's materialization does not start from
//     scratch. The catalog is pre-seeded with the previous epoch's fixpoint,
//     and only the ingested ground delta (additions-only, delimited by the
//     previous epoch's pinned lengths) plus each stratum's newly derived
//     rows re-enter semi-naive evaluation, through a dedicated incremental
//     lowering (ir.LowerWarm: a delta variant per positive body atom, no
//     naive prologue) and the interpreter's SeedDelta hook. Plans for the
//     warm root are staged against the previous materialization's
//     post-fixpoint statistics.
//
// The materialized load path is driven by engines.RunCaracServe
// (ServeConfig.Materialize/Repeat), carac serve -materialize -repeat, and
// BenchmarkMaterializedServe (the BENCH_materialize.json CI artifact,
// race-checked), which compares repeat-heavy and repeat-free drives against
// the re-derive baseline.
//
// # Persistent cache
//
// The program-lifetime store dies with the process; core.Options.CacheDir
// extends it across process restarts (implying SharedPlans). A Run over a
// CacheDir loads the directory into the store before querying and flushes
// the store back after a successful query; a serving Program loads at Serve
// and flushes at every Publish. The target is the cold start: a restarted
// process replays identical facts, so its drift trajectory matches the one
// the cached entries were built against, and the disk-warm first query
// builds zero plans and — on the bytecode backend — recompiles zero units
// (pinned by TestPersistColdWarmRoundTrip across the execution-mode matrix,
// measured by BenchmarkColdStart / the BENCH_coldstart.json CI artifact and
// engines.RunCaracColdStart).
//
//   - Entry format: one file per (class, structural key), named
//     c<class>-<sha256(key)>.cce — content addressing by the same canonical
//     fingerprints the in-memory store uses. Each file carries a versioned
//     envelope (magic, format version, an engine tag embedding the engine
//     version plus every codec version, CRC32 over the body) and the key's
//     band entries: drift counters, build-time cardinalities, band-widening
//     state, and the serialized artifact. A profile.ccs file rides along
//     with the post-fixpoint statistics snapshot the entries were built
//     against (stats.CaptureSnapshot; exposed as Program.CachedProfile).
//
//   - What each backend persists: interpreter plans serialize symbolically
//     (internal/interp plan codec — predicates, access-path choices,
//     template elements, EstRows; never pointers) and are revalidated
//     against the live catalog on load (interp.RevalidatePlan, the same
//     demote-or-upgrade logic as bindPlan's rebind), so a probe whose index
//     is not registered in this process degrades to a filtered scan instead
//     of assuming the old layout. Bytecode units serialize whole
//     (bytecode.EncodeProgram: instruction words plus constant pools — the
//     Program is flat and pointer-free by construction). Lambda and quotes
//     closures and span-parameterized shard task units cannot leave the
//     process; they persist as recompile hints (entry recorded, artifact
//     absent) and count as disk misses on load. The memo class is never
//     persisted — memoized results are epoch-qualified and epochs die with
//     the server.
//
//   - Invalidation rules: any envelope mismatch — magic, format version,
//     engine/codec tag, CRC, or a mid-entry decode error — makes the file a
//     silent miss, counted in plancache.DiskStats.Invalidations (the carac
//     CLI prints a disk-cache line under -stats) and overwritten by the next
//     flush; a corrupt directory can cost a cold start but never an error or
//     a partial entry. Flushes are atomic (temp file + rename, concurrent
//     flushers race benignly) and never delete files, so entries evicted
//     from the bounded in-memory store outlive the eviction on disk.
//     Directory hygiene happens at Load instead: permanently invalid files
//     (bad envelope, stale tag, decode failure) are removed rather than
//     left to accumulate, as are orphaned flush temp files old enough that
//     no live writer can still own them (DiskStats.Swept counts both).
//     Loaded entries are injected at generation zero: the first reuse in
//     the new process always registers as a CrossRunHit, and an entry the
//     live store already rebuilt is never displaced by its disk copy.
//
// # Incremental maintenance
//
// Everything above treats ground facts as append-only; core.Tx and
// core.Program.Apply add retraction. A Tx is a batch of insertions and
// deletions (deletions apply first; a delete plus insert of one tuple in
// the same batch nets to present), and Apply brings the standing fixpoint
// up to date incrementally instead of recomputing it:
//
//   - Counting for ground facts: every ground row carries an assertion
//     count (storage.Relation.EnableCounts/IncRef/DecRef, maintained across
//     all four storage layouts). Inserting an already-present fact bumps
//     its count; a deletion decrements and only a count reaching zero makes
//     the fact a retraction candidate — redundant retractions are no-ops
//     (ApplyResult.Deleted vs Retracted). Derived rows are not counted:
//     recursive closures make exact derivation counting quadratic in the
//     worst case, which is exactly why the derived side uses DRed instead.
//
//   - DRed for derived state: zero-count seeds drive an over-delete
//     closure (interp.Interp.OverDelete over ir.LowerRetract's per-rule
//     delta variants) that marks everything transitively derivable from the
//     deleted facts, protecting still-asserted ground rows; doomed rows are
//     removed in one batched compaction per relation
//     (storage.Relation.DeleteRows — pinned epoch views detach copy-on-flip
//     first, so serving sessions never observe the compaction); one
//     rederivation round re-inserts over-deleted rows with surviving
//     alternative derivations; and the monotone continuation (the same
//     ir.LowerWarm + SeedDelta machinery materialized warm start uses)
//     cascades rederivation and co-batched insertions to the new fixpoint.
//     Post-removal state under-approximates the new fixpoint, so the
//     monotone re-run is sound.
//
//   - When Apply is warm: a standing fixpoint exists, the program is
//     monotone (no negation — a deletion can create a negation-guarded
//     tuple, which DRed cannot see), and Naive mode is off; anything else
//     — including the bootstrap batch — falls back to a cold recompute,
//     reported as ApplyResult.Cold. Stats.Retracted / Stats.Rederived and
//     per-batch ApplyResult.Latency expose the maintenance work.
//
//   - Serving: Server.IngestTx applies a Tx to the live ground state
//     (count-gated, same semantics) between epochs; a deletion-bearing
//     window marks the next published epoch, which refuses the
//     materialization warm start and derives cold — warm seeding can only
//     add. Pinned epochs keep serving their snapshot verbatim across the
//     deletion compaction, and the post-delete Publish flips the memo
//     generation so no session answers from a stale fixpoint.
//     ServeStats{IngestBatches, IngestedRows, RowsRetracted, IngestLatency}
//     count the ingest side.
//
// The delete-oracle differential matrix (TestDeleteOracleMatrix: scripted
// insert/delete batches across {sequential, parallel, sharded, adaptive,
// steal} × {jit} on TC and CSPA, byte-compared against a
// recompute-from-scratch oracle each step, race-checked in CI),
// FuzzRetraction (random batches vs the oracle), and
// BenchmarkStreamingIngest (the BENCH_stream.json CI artifact: incremental
// churn batches vs forced recompute) pin the path down.
//
// Post-Run mutation contract (and cache lifecycle): the rule set freezes at
// a Program's first Run — adding rules or source afterwards errors; create a
// new Program for a different rule set. Facts MAY keep being added between
// runs (the catalog rewinds derived state to the ground-fact baseline and
// repartitions on insert), and repeated Runs are always legal. The plan
// store deliberately spans exactly that lifetime: because rules cannot
// change after the first Run, structural fingerprints stay valid for the
// Program's life, and fact mutations are precisely what the drift-gated
// freshness policy absorbs. Execution configuration MAY change between the
// runs of one Program — including the Shards count and whether a JIT is
// attached: plans carry no per-run state, sequential units are
// backend/snippet-tagged, and span-parameterized task units are additionally
// layout-tagged, so mixed-configuration run sequences share what is safe to
// share and recompile the rest.
package carac

// Version identifies this reproduction build. internal/core mirrors it in
// its persistent-cache tag (engineVersion); bump both together so on-disk
// caches from older builds invalidate cleanly.
const Version = "0.1.0"
