// Package carac is a from-scratch Go reproduction of "Adaptive Recursive
// Query Optimization" (Herlihy, Martres, Ailamaki, Odersky — ICDE 2024): the
// Carac Datalog engine with Adaptive Metaprogramming, i.e. runtime join-order
// optimization and repeated re-optimization of recursive queries through
// staged code generation.
//
// The engine lives under internal/ (see DESIGN.md for the module map); the
// public entry points are:
//
//   - internal/core — the embedded Datalog DSL and execution engine;
//   - cmd/carac — run .dl programs from the command line;
//   - cmd/caracbench — regenerate every table and figure of the paper;
//   - cmd/datagen — emit the synthetic benchmark datasets;
//   - bench_test.go — testing.B benchmarks, one per table/figure.
package carac

// Version identifies this reproduction build.
const Version = "0.1.0"
