// Adaptivity under the hood: watch relation cardinalities drift across
// fixpoint iterations and the optimizer re-deriving join orders mid-query —
// the mechanism behind §IV's worked example, where the best order at
// iteration 1 is no longer best at iteration 7.
package main

import (
	"fmt"

	"carac/internal/analysis"
	"carac/internal/datagen"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/optimizer"
	"carac/internal/stats"
	"carac/internal/storage"
)

// tracer is an interp.Controller that logs delta cardinalities at every
// SwapClear and reorders each subquery with live statistics, printing the
// chosen order whenever it changes.
type tracer struct {
	cat    *storage.Catalog
	iter   int
	orders map[*ir.SPJOp]string
}

func (t *tracer) Enter(op ir.Op, in *interp.Interp) func() error {
	switch n := op.(type) {
	case *ir.SwapClearOp:
		t.iter++
		fmt.Printf("iteration %2d:", t.iter)
		for _, pid := range n.Preds {
			p := t.cat.Pred(pid)
			fmt.Printf("  |%sδ|=%-6d |%s⋆|=%-6d", p.Name, p.DeltaNew.Len(), p.Name, p.Derived.Len())
		}
		fmt.Println()
	case *ir.SPJOp:
		live := stats.Catalog{Cat: t.cat}
		changed, err := optimizer.Reorder(n, live, optimizer.DefaultOptions())
		if err == nil && changed {
			order := optimizer.Explain(n, t.cat, live, optimizer.DefaultOptions())
			if t.orders[n] != order {
				t.orders[n] = order
				fmt.Printf("    ↳ reordered subquery (rule %d): %s\n", n.RuleIdx, order)
			}
		}
	}
	return nil
}

func main() {
	facts := datagen.CSPAGraph(150, 42)
	b := analysis.CSPA(analysis.Unoptimized, facts)

	root, err := ir.Lower(b.P.AST())
	if err != nil {
		panic(err)
	}
	cat := b.P.Catalog()
	for pid, cols := range ir.JoinKeyColumns(b.P.AST()) {
		cat.Pred(pid).BuildIndexes(cols)
	}

	fmt.Println("CSPA (adversarial atom order) with live reordering traced:")
	fmt.Println()
	tr := &tracer{cat: cat, orders: map[*ir.SPJOp]string{}}
	in := interp.New(cat, tr)
	if err := in.Run(root); err != nil {
		panic(err)
	}
	fmt.Printf("\nfixpoint: %d facts derived in %d iterations, %d subquery runs\n",
		cat.TotalDerived(), in.Stats.Iterations, in.Stats.SPJRuns)
	fmt.Println("note how orders chosen in early iterations are revised once delta")
	fmt.Println("and derived cardinalities diverge — ahead-of-time planning cannot")
	fmt.Println("anticipate this (paper §IV).")
}
