// Graph reachability at scale: run Graspan's CSPA pointer analysis over a
// generated program graph in three configurations — the adversarial
// ("unoptimized") atom order interpreted, the hand-optimized order
// interpreted, and the adversarial order rescued by the adaptive JIT —
// reproducing the paper's headline comparison live.
package main

import (
	"fmt"
	"time"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
)

func main() {
	const n = 200
	facts := datagen.CSPAGraph(n, 42)
	fmt.Printf("CSPA input: %d Assign + %d Derefr facts over %d variables\n\n",
		len(facts.Assign), len(facts.Derefr), facts.NumVar)

	type config struct {
		name string
		form analysis.Formulation
		opts core.Options
	}
	configs := []config{
		{"unoptimized, interpreted", analysis.Unoptimized,
			core.Options{Indexed: true, Timeout: 2 * time.Minute}},
		{"hand-optimized, interpreted", analysis.HandOptimized,
			core.Options{Indexed: true, Timeout: 2 * time.Minute}},
		{"unoptimized + JIT (irgen)", analysis.Unoptimized,
			core.Options{Indexed: true, Timeout: 2 * time.Minute,
				JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		{"unoptimized + JIT (lambda, async)", analysis.Unoptimized,
			core.Options{Indexed: true, Timeout: 2 * time.Minute,
				JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranUnionAll, Async: true}}},
	}

	var baseline time.Duration
	for i, c := range configs {
		b := analysis.CSPA(c.form, facts)
		res, err := b.P.Run(c.opts)
		if err != nil {
			fmt.Printf("%-34s DNF (%v)\n", c.name, err)
			continue
		}
		line := fmt.Sprintf("%-34s %10v  |VAlias|=%d", c.name, res.Duration.Round(time.Millisecond), b.Output.Len())
		if i == 0 {
			baseline = res.Duration
		} else if baseline > 0 {
			line += fmt.Sprintf("  (%.1fx vs unoptimized)", float64(baseline)/float64(res.Duration))
		}
		if res.JIT.Reorders > 0 || res.JIT.Compilations > 0 {
			line += fmt.Sprintf("  [reorders=%d compiles=%d]", res.JIT.Reorders, res.JIT.Compilations)
		}
		fmt.Println(line)
	}
	fmt.Println("\nThe JIT recovers (or beats) the hand-optimized plan with no user input:")
	fmt.Println("join orders are re-derived from live cardinalities at runtime (§IV).")
}
