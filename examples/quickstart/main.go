// Quickstart: build a transitive-closure program with the embedded Datalog
// DSL, run it under the JIT, and inspect results and statistics.
package main

import (
	"fmt"

	"carac/internal/core"
	"carac/internal/jit"
	"carac/internal/storage"
)

func main() {
	// Declare the schema: an EDB relation `edge` and an IDB relation `tc`.
	p := core.NewProgram()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)

	// Rules: tc is the transitive closure of edge.
	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
	p.MustRule(tc.A(x, y), edge.A(x, y))
	p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))

	// Facts: a chain 0 -> 1 -> ... -> 6 plus a back edge.
	for i := 0; i < 6; i++ {
		edge.MustFact(i, i+1)
	}
	edge.MustFact(6, 2)

	// Run with the JIT: lambda backend, per-relation granularity, indexes on.
	res, err := p.Run(core.Options{
		Indexed: true,
		JIT: jit.Config{
			Backend:     jit.BackendLambda,
			Granularity: jit.GranUnionAll,
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("derived %d tc facts in %v (%d fixpoint iterations, %d compilations)\n",
		tc.Len(), res.Duration, res.Interp.Iterations, res.JIT.Compilations)

	fmt.Println("nodes reachable from 0:")
	tc.Each(func(t []storage.Value) bool {
		if t[0] == 0 {
			fmt.Printf("  0 -> %d\n", t[1])
		}
		return true
	})
}
