// Program analysis: run Andersen's points-to analysis and the paper's
// Inverse-Functions analysis (§VI-A) over the synthetic SListLib program —
// a linked-list library whose entry point serializes a list, computes, and
// deserializes it again. The analysis flags the serialize/deserialize pair
// as a wasted round trip.
package main

import (
	"fmt"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
	"carac/internal/storage"
)

func main() {
	facts := datagen.SListLib(1, 42)
	fmt.Printf("SListLib facts: %d alloc, %d move, %d load, %d store, %d call, %d inverse\n",
		len(facts.Alloc), len(facts.Move), len(facts.Load), len(facts.Store),
		len(facts.Call), len(facts.Inverse))

	// Plain points-to first.
	and := analysis.Andersen(analysis.HandOptimized, facts)
	res, err := and.P.Run(core.Options{Indexed: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAndersen: %d points-to facts in %v (%d iterations)\n",
		and.Output.Len(), res.Duration, res.Interp.Iterations)

	// The Inverse-Functions analysis under the adaptive JIT.
	inv := analysis.InvFuns(analysis.HandOptimized, facts)
	res, err = inv.P.Run(core.Options{
		Indexed: true,
		JIT:     jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("InvFuns:  %d wasted round trips in %v (%d join reorders applied)\n",
		inv.Output.Len(), res.Duration, res.JIT.Reorders)

	undo := inv.P.Relation("undo", 2)
	fmt.Println("\nundo(result, original) — values recoverable without the round trip:")
	n := 0
	undo.Each(func(t []storage.Value) bool {
		fmt.Printf("  v%d undoes back to v%d\n", t[0], t[1])
		n++
		return n < 10
	})
	fmt.Println("\nverdict: calls to serialize/deserialize cancel out — the pipeline")
	fmt.Println("can skip the round trip when both ends stay in-process.")
}
